// Decoded-block cache plumbing: the sink interface a reader consults
// during iteration, and the pooled scratch its eager decode fills go
// through. The cache itself (shards, budget, eviction) lives above the
// codec in internal/core; this file only defines the contract and the
// allocation idiom (decode into pooled scratch, copy exactly-sized into
// the cache — the ugorji pool pattern from the engine's scratch-buffer
// work, so fills do not thrash the heap with worst-case capacities).
package postings

import "sync"

// BlockCacheSink is a decoded-postings cache attached to a reader with
// SetBlockCache. GetBlock returns the decoded body of block i if
// cached; PutBlock offers a freshly decoded body (the sink may decline
// to admit it). For v2 records i is the block index; a v3 record caches
// whole under i = 0.
//
// Sharing contract: cached slices are handed to many readers
// concurrently and must be treated as immutable — neither the sink nor
// any reader may modify a Posting or its Positions after PutBlock, and
// the slices must not alias pooled or otherwise reused memory.
type BlockCacheSink interface {
	GetBlock(i int) ([]Posting, bool)
	PutBlock(i int, ps []Posting)
}

// fillScratch gathers one eager decode: docs and flattened positions,
// with per-posting start offsets into the arena. finalize copies the
// gather into exactly-sized allocations (one posting slice, one shared
// position arena) safe to hand to a BlockCacheSink; the scratch then
// returns to the pool, its grown capacity reused by the next fill.
type fillScratch struct {
	docs   []uint32
	starts []int
	pos    []uint32
}

var fillPool = sync.Pool{New: func() any { return new(fillScratch) }}

func getFillScratch() *fillScratch { return fillPool.Get().(*fillScratch) }

func (fs *fillScratch) start(doc uint32) {
	fs.docs = append(fs.docs, doc)
	fs.starts = append(fs.starts, len(fs.pos))
}

func (fs *fillScratch) addPos(p uint32) { fs.pos = append(fs.pos, p) }

func (fs *fillScratch) n() int { return len(fs.docs) }

// finalize builds the immutable cache copy: every posting's Positions
// is a capped sub-slice of one arena, so a cached block costs two
// allocations regardless of posting count.
func (fs *fillScratch) finalize() []Posting {
	arena := make([]uint32, len(fs.pos))
	copy(arena, fs.pos)
	out := make([]Posting, len(fs.docs))
	for i, d := range fs.docs {
		lo := fs.starts[i]
		hi := len(fs.pos)
		if i+1 < len(fs.starts) {
			hi = fs.starts[i+1]
		}
		out[i] = Posting{Doc: d, Positions: arena[lo:hi:hi]}
	}
	return out
}

func (fs *fillScratch) release() {
	fs.docs, fs.starts, fs.pos = fs.docs[:0], fs.starts[:0], fs.pos[:0]
	fillPool.Put(fs)
}
