// Bitmap (v3) record format: a dense-set posting representation in the
// spirit of compression-based index structures that switch dense terms
// from gap-coded document lists to bitmaps. A term that appears in a
// large fraction of the documents inside its docID range wastes a
// varint gap (~1 byte) per document in v1/v2; one bit per candidate
// document is smaller whenever more than one document in eight inside
// the span is present, and membership tests become word operations.
//
// Layout (all integers unsigned LEB128 varints unless noted):
//
//	0x00 0x00 0x03           magic: two zero bytes + version
//	ctf                      collection term frequency
//	df                       document frequency
//	maxTF                    largest within-document tf (MaxScore bound)
//	minDoc                   smallest docID in the list
//	span                     lastDoc − minDoc + 1 (bit i ⇔ doc minDoc+i)
//	nwords × uint64 LE       bitmap, nwords = ceil(span/64), raw 8-byte words
//	nwords × byteLen         payload byte length per word
//	payload                  per set bit, in doc order: [tf, tf × posGap]
//
// Documents need no gaps — the bitmap is the document list — so the
// payload holds only term frequencies and position gaps. The per-word
// length table is the skip structure: Advance jumps straight to the
// target's word, skipping every earlier word's payload without decoding
// it, the same role the per-block descriptors play in v2.
//
// Canonical form (enforced by the reader, so corrupt records surface as
// ErrCorrupt rather than silent wrong results): bit 0 of word 0 and bit
// span−1 are set, bits at or above span are clear, the popcount equals
// df, a word's payload length is zero exactly when the word is empty,
// and the payloads exactly fill the record.
//
// The magic is unambiguous against v1 for the same reason as v2: a v1
// record starting with two zero bytes is exactly two bytes long.
package postings

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// IsV3 reports whether rec carries the bitmap-format magic.
func IsV3(rec []byte) bool {
	return len(rec) > 2 && rec[0] == 0 && rec[1] == 0 && rec[2] == 3
}

// IsVersioned reports whether rec carries any versioned-record magic
// (two leading zero bytes on a record longer than two bytes — see the
// package comment for why this cannot be v1). Readers that dispatch on
// the version must treat a versioned record with an unknown version
// byte as corrupt, never as v1.
func IsVersioned(rec []byte) bool {
	return len(rec) > 2 && rec[0] == 0 && rec[1] == 0
}

// EncodeV3 serializes postings in the bitmap format. The input contract
// matches Encode: ascending unique docs, ascending positions. The list
// must be non-empty (an empty list has no span; EncodeAuto never routes
// one here).
func EncodeV3(ps []Posting) ([]byte, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("%w: bitmap encoding needs a non-empty list", ErrCorrupt)
	}
	var ctf, maxTF uint64
	prevDoc := int64(-1)
	for _, p := range ps {
		if int64(p.Doc) <= prevDoc {
			return nil, fmt.Errorf("%w: document %d after %d", ErrUnsorted, p.Doc, prevDoc)
		}
		prevDoc = int64(p.Doc)
		ctf += uint64(len(p.Positions))
		if uint64(len(p.Positions)) > maxTF {
			maxTF = uint64(len(p.Positions))
		}
	}
	minDoc := ps[0].Doc
	span := uint64(ps[len(ps)-1].Doc) - uint64(minDoc) + 1
	nwords := int((span + 63) / 64)
	words := make([]uint64, nwords)
	wlen := make([]int, nwords)
	var tmp [binary.MaxVarintLen64]byte
	payload := make([]byte, 0, 2*len(ps))
	for _, p := range ps {
		bit := uint64(p.Doc - minDoc)
		w := int(bit / 64)
		words[w] |= 1 << (bit % 64)
		start := len(payload)
		n := binary.PutUvarint(tmp[:], uint64(len(p.Positions)))
		payload = append(payload, tmp[:n]...)
		prevPos := int64(-1)
		for _, pos := range p.Positions {
			if int64(pos) <= prevPos {
				return nil, fmt.Errorf("%w: position %d after %d in document %d", ErrUnsorted, pos, prevPos, p.Doc)
			}
			n = binary.PutUvarint(tmp[:], uint64(int64(pos)-prevPos))
			payload = append(payload, tmp[:n]...)
			prevPos = int64(pos)
		}
		wlen[w] += len(payload) - start
	}
	out := make([]byte, 0, 3+5*binary.MaxVarintLen64+nwords*9+len(payload))
	out = append(out, 0x00, 0x00, 0x03)
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	put(ctf)
	put(uint64(len(ps)))
	put(maxTF)
	put(uint64(minDoc))
	put(span)
	for _, w := range words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	for _, l := range wlen {
		put(uint64(l))
	}
	out = append(out, payload...)
	return out, nil
}

// BitmapReader iterates a v3 record with optional skipping, mirroring
// BlockReader: Next is the linear scan, Advance(doc) jumps to the first
// posting with Doc >= doc, fetching only the word payloads it lands in.
type BitmapReader struct {
	src    RangeSource
	ctf    uint64
	df     uint64
	maxTF  uint32
	minDoc uint32
	span   uint32
	words  []uint64
	wOff   []int // absolute payload offset per word; len(words)+1 entries
	used   int   // words with at least one set bit

	cur     int    // current word index; -1 before start, len(words) when done
	rem     uint64 // unconsumed set bits of words[cur]
	payload []byte
	pOff    int

	returned uint64
	loadedW  int
	err      error

	finished bool
	stats    SkipStats

	cache  BlockCacheSink
	dec    []Posting
	decIdx int
	sink   *fillScratch // eager-decode gather target; nil in normal reads
}

// NewBitmapRangeReader opens a v3 record over a random-access source.
// The header, bitmap words, and length table are read eagerly (they are
// a contiguous prefix, the analog of v2's descriptor table); payloads
// are fetched per word on first use.
func NewBitmapRangeReader(src RangeSource) *BitmapReader {
	br := &BitmapReader{src: src, cur: -1}
	size := src.Size()
	if size < 3 {
		br.err = ErrCorrupt
		return br
	}
	magic, err := src.ReadRange(0, 3)
	if err != nil {
		br.err = err
		return br
	}
	if magic[0] != 0 || magic[1] != 0 || magic[2] != 3 {
		br.err = ErrCorrupt
		return br
	}
	c := &rangeCursor{src: src, off: 3}
	br.ctf = c.uvarint()
	br.df = c.uvarint()
	mt := c.uvarint()
	minDoc := c.uvarint()
	span := c.uvarint()
	if c.err != nil {
		br.err = c.err
		return br
	}
	if span == 0 || br.df == 0 || br.df > span || mt > 0xFFFFFFFF ||
		minDoc > 0xFFFFFFFF || minDoc+span-1 > 0xFFFFFFFF {
		br.err = ErrCorrupt
		return br
	}
	br.maxTF, br.minDoc, br.span = uint32(mt), uint32(minDoc), uint32(span)
	nwords := int((span + 63) / 64)
	wordsOff := c.pos()
	// Bound the allocation by the record size before trusting span.
	if wordsOff+nwords*8 > size {
		br.err = ErrCorrupt
		return br
	}
	raw, err := src.ReadRange(wordsOff, nwords*8)
	if err != nil {
		br.err = err
		return br
	}
	words := make([]uint64, nwords)
	var pop uint64
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(raw[i*8:])
		pop += uint64(bits.OnesCount64(words[i]))
		if words[i] != 0 {
			br.used++
		}
	}
	// Canonical-form checks: the bit range is tight, the count matches
	// the header, and no bits lie beyond the span.
	last := words[nwords-1]
	if pop != br.df || words[0]&1 == 0 ||
		last>>((span-1)%64)&1 == 0 || (span%64 != 0 && last>>(span%64) != 0) {
		br.err = ErrCorrupt
		return br
	}
	c = &rangeCursor{src: src, off: wordsOff + nwords*8}
	wOff := make([]int, nwords+1)
	off := 0 // relative; rebased once the table's own length is known
	for i := 0; i < nwords; i++ {
		bl := c.uvarint()
		if c.err != nil {
			br.err = c.err
			return br
		}
		pc := bits.OnesCount64(words[i])
		// A word's payload holds at least one tf byte per set bit, and
		// exactly nothing for an empty word.
		if bl > uint64(size) || (pc == 0) != (bl == 0) || bl < uint64(pc) {
			br.err = ErrCorrupt
			return br
		}
		wOff[i] = off
		off += int(bl)
	}
	wOff[nwords] = off
	base := c.pos()
	for i := range wOff {
		wOff[i] += base
	}
	if wOff[nwords] != size {
		br.err = ErrCorrupt // payloads must exactly fill the record
		return br
	}
	br.words, br.wOff = words, wOff
	return br
}

// OpenBitmapReader opens an in-memory record if it is v3-encoded; the
// bool is false otherwise.
func OpenBitmapReader(rec []byte) (*BitmapReader, bool) {
	if !IsV3(rec) {
		return nil, false
	}
	return NewBitmapRangeReader(bytesRange(rec)), true
}

// CTF returns the collection term frequency from the header.
func (br *BitmapReader) CTF() uint64 { return br.ctf }

// DF returns the document frequency from the header.
func (br *BitmapReader) DF() uint64 { return br.df }

// MaxTF returns the largest within-document term frequency, from the
// header — the per-term score upper bound for MaxScore pruning.
func (br *BitmapReader) MaxTF() uint32 { return br.maxTF }

// Words returns the number of 64-document bitmap words in the record.
func (br *BitmapReader) Words() int { return len(br.words) }

// Err returns the first decoding error encountered, if any.
func (br *BitmapReader) Err() error { return br.err }

// SetBlockCache attaches a decoded-postings cache. A v3 record caches
// as a single unit under block index 0: its whole decoded posting list.
// Dense records decode in one pass anyway, so finer granularity would
// only fragment the cache. See BlockCacheSink for the sharing contract.
func (br *BitmapReader) SetBlockCache(c BlockCacheSink) { br.cache = c }

// wordLast returns the largest docID word i can hold.
func (br *BitmapReader) wordLast(i int) uint32 {
	d := uint64(br.minDoc) + uint64(i)*64 + 63
	if top := uint64(br.minDoc) + uint64(br.span) - 1; d > top {
		d = top
	}
	return uint32(d)
}

func (br *BitmapReader) loadWord(i int) bool {
	n := br.wOff[i+1] - br.wOff[i]
	body, err := br.src.ReadRange(br.wOff[i], n)
	if err != nil {
		br.err = err
		return false
	}
	br.payload, br.pOff = body, 0
	br.cur, br.rem = i, br.words[i]
	br.loadedW++
	return true
}

func (br *BitmapReader) uv() (uint64, bool) {
	v, n := binary.Uvarint(br.payload[br.pOff:])
	if n <= 0 {
		br.err = ErrCorrupt
		return 0, false
	}
	br.pOff += n
	return v, true
}

// Next decodes the next posting in document order. The Positions slice
// is freshly allocated.
func (br *BitmapReader) Next() (Posting, bool) {
	return br.scan(0, false)
}

// Advance returns the first posting with Doc >= target at or after the
// current position. Words wholly below target are skipped without their
// payloads being fetched; within the landing word, passed-over postings
// are decoded but their positions are not materialized. Advance and
// Next may be interleaved freely.
func (br *BitmapReader) Advance(target uint32) (Posting, bool) {
	return br.scan(target, true)
}

func (br *BitmapReader) scan(target uint32, filtered bool) (Posting, bool) {
	if br.dec != nil || br.cache != nil {
		if p, ok := br.scanCached(target, filtered); ok || br.dec != nil || br.err != nil {
			return p, ok
		}
	}
	for {
		if br.err != nil {
			return Posting{}, false
		}
		if br.cur >= 0 && br.cur < len(br.words) && br.rem != 0 &&
			filtered && br.wordLast(br.cur) < target {
			// Mid-word and every remaining doc here is below target:
			// abandon the rest of the word (payload offsets are absolute,
			// so the next word needs nothing from this one).
			br.rem = 0
		}
		if br.cur < 0 || br.cur >= len(br.words) || br.rem == 0 {
			ni := br.cur + 1
			for ni < len(br.words) && (br.words[ni] == 0 || (filtered && br.wordLast(ni) < target)) {
				ni++
			}
			if ni >= len(br.words) {
				br.cur = len(br.words)
				return Posting{}, false
			}
			if !br.loadWord(ni) {
				return Posting{}, false
			}
			continue
		}
		bit := bits.TrailingZeros64(br.rem)
		br.rem &= br.rem - 1
		doc := uint32(uint64(br.minDoc) + uint64(br.cur)*64 + uint64(bit))
		tf, ok := br.uv()
		if !ok {
			return Posting{}, false
		}
		if tf > uint64(br.maxTF) {
			br.err = ErrCorrupt // tf above the header bound breaks MaxScore
			return Posting{}, false
		}
		materialize := !filtered || doc >= target
		var positions []uint32
		if materialize && br.sink != nil {
			br.sink.start(doc)
		} else if materialize {
			capHint := tf
			if rem := uint64(len(br.payload) - br.pOff); capHint > rem {
				capHint = rem
			}
			positions = make([]uint32, 0, capHint)
		}
		prevPos := int64(-1)
		for i := uint64(0); i < tf; i++ {
			pg, ok := br.uv()
			if !ok {
				return Posting{}, false
			}
			if pg == 0 {
				br.err = ErrCorrupt
				return Posting{}, false
			}
			pos := prevPos + int64(pg)
			if pos > 0xFFFFFFFF {
				br.err = ErrCorrupt
				return Posting{}, false
			}
			if materialize {
				if br.sink != nil {
					br.sink.addPos(uint32(pos))
				} else {
					positions = append(positions, uint32(pos))
				}
			}
			prevPos = pos
		}
		if br.rem == 0 && br.pOff != len(br.payload) {
			br.err = ErrCorrupt // word payload must be exactly consumed
			return Posting{}, false
		}
		if materialize {
			br.returned++
			return Posting{Doc: doc, Positions: positions}, true
		}
	}
}

// scanCached serves from the record-level decoded cache: a hit installs
// the whole decoded list, a miss decodes it eagerly once and offers it
// to the cache. Returns ok=false with br.dec == nil when the caller
// should fall back to the streaming path (only possible before any
// cached iteration started).
func (br *BitmapReader) scanCached(target uint32, filtered bool) (Posting, bool) {
	if br.dec == nil {
		if br.cur >= 0 {
			// Iteration already started on the streaming path (cache was
			// attached mid-flight); keep it there.
			return Posting{}, false
		}
		if ps, ok := br.cache.GetBlock(0); ok {
			br.dec = ps
		} else {
			ps, err := br.decodeAllEager()
			if err != nil {
				br.err = err
				return Posting{}, false
			}
			br.cache.PutBlock(0, ps)
			br.dec = ps
		}
		br.cur = len(br.words) // streaming path permanently exhausted
		br.loadedW = br.used
	}
	if filtered {
		for br.decIdx < len(br.dec) && br.dec[br.decIdx].Doc < target {
			br.decIdx++
		}
	}
	if br.decIdx >= len(br.dec) {
		return Posting{}, false
	}
	p := br.dec[br.decIdx]
	br.decIdx++
	br.returned++
	return p, true
}

// decodeAllEager decodes the entire record into a fresh, exactly-sized
// posting slice for the cache, gathering through pooled scratch (the
// cached copy must not alias pool memory).
func (br *BitmapReader) decodeAllEager() ([]Posting, error) {
	tmp := NewBitmapRangeReader(br.src)
	if tmp.err != nil {
		return nil, tmp.err
	}
	fs := getFillScratch()
	defer fs.release()
	tmp.sink = fs
	for {
		if _, ok := tmp.scan(0, false); !ok {
			break
		}
	}
	if tmp.Err() != nil {
		return nil, tmp.Err()
	}
	if uint64(fs.n()) != br.df {
		return nil, fmt.Errorf("%w: header df=%d but %d postings", ErrCorrupt, br.df, fs.n())
	}
	return fs.finalize(), nil
}

// FinishStats closes out the iteration and returns what was skipped:
// postings never surfaced and word payloads never fetched (reported in
// Blocks, the skip-unit slot). Idempotent; safe to call mid-iteration.
func (br *BitmapReader) FinishStats() SkipStats {
	if !br.finished {
		br.finished = true
		br.stats = SkipStats{
			Postings: br.df - br.returned,
			Blocks:   uint64(br.used - br.loadedW),
		}
	}
	return br.stats
}
