// Package postings implements INQUERY's inverted-list record format.
//
// A record holds all the evidence for one term: "a header containing
// summary statistics about the term, followed by a listing of the
// documents, and the locations within each document, where the term
// occurs. The record is stored as a vector of integers in a compressed
// format" (paper §3.1). Both storage backends store these byte strings
// verbatim; the paper replaces the record *manager*, never the record
// format, and this package is that shared format.
//
// Layout (all integers are unsigned LEB128 varints):
//
//	ctf                      collection term frequency (total occurrences)
//	df                       document frequency (number of documents)
//	df × [ docGap, tf, tf × posGap ]
//
// Document identifiers appear in ascending order and are gap-encoded
// (first gap is docID+1 so that document 0 is representable); positions
// within a document likewise. Gap encoding plus varints yields roughly
// the 60 % compression the paper reports for its four collections.
package postings

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Posting records the occurrences of a term within one document.
type Posting struct {
	Doc       uint32
	Positions []uint32 // ascending term positions within the document
}

// TF returns the within-document term frequency.
func (p Posting) TF() int { return len(p.Positions) }

// Errors returned by the codec.
var (
	ErrCorrupt  = errors.New("postings: corrupt record")
	ErrUnsorted = errors.New("postings: postings out of order")
)

// Encode serializes a list of postings. Postings must be sorted by
// ascending Doc with no duplicates, and each position list ascending;
// Encode returns ErrUnsorted otherwise, so a misbehaving indexer
// surfaces as a build error rather than a crash.
func Encode(ps []Posting) ([]byte, error) {
	var ctf uint64
	for _, p := range ps {
		ctf += uint64(len(p.Positions))
	}
	buf := make([]byte, 0, 2*binary.MaxVarintLen32+len(ps)*4)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(ctf)
	put(uint64(len(ps)))
	prevDoc := int64(-1)
	for _, p := range ps {
		if int64(p.Doc) <= prevDoc {
			return nil, fmt.Errorf("%w: document %d after %d", ErrUnsorted, p.Doc, prevDoc)
		}
		put(uint64(int64(p.Doc) - prevDoc))
		prevDoc = int64(p.Doc)
		put(uint64(len(p.Positions)))
		prevPos := int64(-1)
		for _, pos := range p.Positions {
			if int64(pos) <= prevPos {
				return nil, fmt.Errorf("%w: position %d after %d in document %d", ErrUnsorted, pos, prevPos, p.Doc)
			}
			put(uint64(int64(pos) - prevPos))
			prevPos = int64(pos)
		}
	}
	return buf, nil
}

// Stats decodes only the record header, of any version.
func Stats(rec []byte) (ctf, df uint64, err error) {
	if IsVersioned(rec) {
		if rec[2] != 0x02 && rec[2] != 0x03 {
			return 0, 0, ErrCorrupt
		}
		// Both versioned layouts put ctf then df right after the magic.
		ctf, n := binary.Uvarint(rec[3:])
		if n <= 0 {
			return 0, 0, ErrCorrupt
		}
		df, m := binary.Uvarint(rec[3+n:])
		if m <= 0 {
			return 0, 0, ErrCorrupt
		}
		return ctf, df, nil
	}
	ctf, n := binary.Uvarint(rec)
	if n <= 0 {
		return 0, 0, ErrCorrupt
	}
	df, m := binary.Uvarint(rec[n:])
	if m <= 0 {
		return 0, 0, ErrCorrupt
	}
	return ctf, df, nil
}

// Reader iterates over the postings of an encoded record without
// materializing them all, supporting INQUERY's term-at-a-time scan.
type Reader struct {
	rec  []byte
	off  int
	ctf  uint64
	df   uint64
	seen uint64
	prev int64
	err  error
}

// NewReader prepares an iterator over rec. The header is decoded
// eagerly; Err reports any corruption found there.
func NewReader(rec []byte) *Reader {
	r := &Reader{rec: rec, prev: -1}
	ctf, n := binary.Uvarint(rec)
	if n <= 0 {
		r.err = ErrCorrupt
		return r
	}
	df, m := binary.Uvarint(rec[n:])
	if m <= 0 {
		r.err = ErrCorrupt
		return r
	}
	r.ctf, r.df, r.off = ctf, df, n+m
	return r
}

// CTF returns the collection term frequency from the header.
func (r *Reader) CTF() uint64 { return r.ctf }

// DF returns the document frequency from the header.
func (r *Reader) DF() uint64 { return r.df }

// Err returns the first decoding error encountered, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(r.rec[r.off:])
	if n <= 0 {
		r.err = ErrCorrupt
		return 0, false
	}
	r.off += n
	return v, true
}

// Next decodes the next posting. It returns false at the end of the
// record or on corruption (check Err to distinguish). The returned
// Positions slice is freshly allocated and safe to retain.
func (r *Reader) Next() (Posting, bool) {
	if r.err != nil || r.seen >= r.df {
		return Posting{}, false
	}
	gap, ok := r.uvarint()
	if !ok {
		return Posting{}, false
	}
	if gap == 0 {
		r.err = ErrCorrupt
		return Posting{}, false
	}
	doc := r.prev + int64(gap)
	if doc > 0xFFFFFFFF {
		r.err = ErrCorrupt
		return Posting{}, false
	}
	r.prev = doc
	tf, ok := r.uvarint()
	if !ok {
		return Posting{}, false
	}
	// Cap the pre-allocation by what the remaining bytes could possibly
	// encode (one byte per position gap minimum), so a corrupt tf header
	// cannot demand an arbitrarily large allocation.
	capHint := tf
	if rem := uint64(len(r.rec) - r.off); capHint > rem {
		capHint = rem
	}
	positions := make([]uint32, 0, capHint)
	prevPos := int64(-1)
	for i := uint64(0); i < tf; i++ {
		pg, ok := r.uvarint()
		if !ok {
			return Posting{}, false
		}
		if pg == 0 {
			r.err = ErrCorrupt
			return Posting{}, false
		}
		pos := prevPos + int64(pg)
		if pos > 0xFFFFFFFF {
			r.err = ErrCorrupt
			return Posting{}, false
		}
		positions = append(positions, uint32(pos))
		prevPos = pos
	}
	r.seen++
	return Posting{Doc: uint32(doc), Positions: positions}, true
}

// DecodeAll decodes every posting in rec, dispatching on the record
// version.
func DecodeAll(rec []byte) ([]Posting, error) {
	if IsVersioned(rec) {
		_, df, err := Stats(rec)
		if err != nil {
			return nil, err
		}
		capHint := df
		if rem := uint64(len(rec)) / 2; capHint > rem {
			capHint = rem
		}
		return AppendAll(make([]Posting, 0, capHint), rec)
	}
	r := NewReader(rec)
	// Each posting needs at least two bytes (doc gap + tf), so cap the
	// pre-allocation accordingly rather than trusting a corrupt df header.
	capHint := r.DF()
	if rem := uint64(len(rec)) / 2; capHint > rem {
		capHint = rem
	}
	ps := make([]Posting, 0, capHint)
	for {
		p, ok := r.Next()
		if !ok {
			break
		}
		ps = append(ps, p)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if uint64(len(ps)) != r.DF() {
		return nil, fmt.Errorf("%w: header df=%d but %d postings", ErrCorrupt, r.DF(), len(ps))
	}
	return ps, nil
}

// Merge inserts adds (sorted by Doc) into the encoded record rec and
// returns the re-encoded result. A document already present is replaced.
// This is the "modification" operation the paper identifies as hard for
// custom keyed files: inserting entries into the middle of potentially
// very large sorted objects.
func Merge(rec []byte, adds []Posting) ([]byte, error) {
	existing, err := DecodeAll(rec)
	if err != nil {
		return nil, err
	}
	merged := make([]Posting, 0, len(existing)+len(adds))
	merged = append(merged, existing...)
	for _, a := range adds {
		i := sort.Search(len(merged), func(i int) bool { return merged[i].Doc >= a.Doc })
		if i < len(merged) && merged[i].Doc == a.Doc {
			merged[i] = a
		} else {
			merged = append(merged, Posting{})
			copy(merged[i+1:], merged[i:])
			merged[i] = a
		}
	}
	return EncodeAuto(merged)
}

// Delete removes the entries for the given documents from the encoded
// record, returning the re-encoded result. Deleting a document that is
// absent is a no-op. Deleting every document yields an empty list record
// (header only), the "hole" case the paper discusses.
func Delete(rec []byte, docs []uint32) ([]byte, error) {
	existing, err := DecodeAll(rec)
	if err != nil {
		return nil, err
	}
	gone := make(map[uint32]bool, len(docs))
	for _, d := range docs {
		gone[d] = true
	}
	kept := existing[:0]
	for _, p := range existing {
		if !gone[p.Doc] {
			kept = append(kept, p)
		}
	}
	return EncodeAuto(kept)
}

// RawSize returns the size in bytes of the uncompressed "vector of
// integers" representation of a record (4 bytes per integer: header,
// per-document id and tf, and every position). The paper reports an
// average compression rate of about 60 % relative to this.
func RawSize(ps []Posting) int {
	n := 2 // ctf, df
	for _, p := range ps {
		n += 2 + len(p.Positions)
	}
	return 4 * n
}
