package postings

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzPostingsRoundTrip throws arbitrary bytes at the record decoder.
// The contract under attack: DecodeAll must return an error for any
// malformed input — never panic, never hang, never fabricate postings —
// and anything it accepts must survive a semantic round trip
// (re-encode, re-decode, byte-level and structural agreement). The
// byte form need not round-trip: the decoder tolerates a wrong CTF
// header, non-minimal varints, and trailing bytes, all of which Encode
// normalizes away.
func FuzzPostingsRoundTrip(f *testing.F) {
	// Seed with well-formed records of each shape the encoder produces...
	for _, ps := range [][]Posting{
		{},
		{{Doc: 0, Positions: []uint32{0}}},
		{{Doc: 1, Positions: []uint32{1, 5, 9}}, {Doc: 7, Positions: []uint32{2}}},
		{{Doc: 100, Positions: nil}, {Doc: 4096, Positions: []uint32{65535}}},
	} {
		rec, err := Encode(ps)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rec)
	}
	// ...and with malformed prefixes the decoder must reject cleanly.
	f.Add([]byte{})
	f.Add([]byte{0x80})                   // truncated uvarint
	f.Add([]byte{0x01, 0xff, 0xff, 0xff}) // df huge, body truncated
	f.Add([]byte{0x00, 0x02, 0x00})       // zero doc gap

	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodeAll(data)
		if err != nil {
			return // rejected: the only acceptable failure mode
		}
		enc, err := Encode(ps)
		if err != nil {
			t.Fatalf("decoded postings do not re-encode: %v", err)
		}
		ps2, err := DecodeAll(enc)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if !reflect.DeepEqual(ps, ps2) {
			t.Fatalf("round trip changed postings:\n  first  %v\n  second %v", ps, ps2)
		}
		// The streaming decoder must agree with the in-memory one on
		// canonical input.
		sr := NewStreamReader(bytes.NewReader(enc))
		var streamed []Posting
		for {
			p, ok := sr.Next()
			if !ok {
				break
			}
			streamed = append(streamed, p)
		}
		if sr.Err() != nil {
			t.Fatalf("stream decode of canonical record failed: %v", sr.Err())
		}
		if len(streamed) != len(ps) {
			t.Fatalf("stream decoded %d postings, in-memory %d", len(streamed), len(ps))
		}
		for i := range ps {
			if streamed[i].Doc != ps[i].Doc || !reflect.DeepEqual(streamed[i].Positions, ps[i].Positions) {
				t.Fatalf("posting %d: stream %v vs in-memory %v", i, streamed[i], ps[i])
			}
		}
	})
}
