package postings

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzPostingsRoundTrip throws arbitrary bytes at the record decoder.
// The contract under attack: DecodeAll must return an error for any
// malformed input — never panic, never hang, never fabricate postings —
// and anything it accepts must survive a semantic round trip
// (re-encode, re-decode, byte-level and structural agreement) through
// BOTH record versions. The byte form need not round-trip: the v1
// decoder tolerates a wrong CTF header, non-minimal varints, and
// trailing bytes, all of which Encode normalizes away. The block (v2)
// re-encoding additionally checks that Advance(doc) agrees with a
// linear Next walk at every skip target.
func FuzzPostingsRoundTrip(f *testing.F) {
	// Seed with well-formed records of each shape the encoder produces...
	for _, ps := range [][]Posting{
		{},
		{{Doc: 0, Positions: []uint32{0}}},
		{{Doc: 1, Positions: []uint32{1, 5, 9}}, {Doc: 7, Positions: []uint32{2}}},
		{{Doc: 100, Positions: nil}, {Doc: 4096, Positions: []uint32{65535}}},
	} {
		rec, err := Encode(ps)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rec)
		rec, err = EncodeV2(ps)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rec)
	}
	// ...a multi-block v2 record so block boundaries are in the corpus...
	big := make([]Posting, 3*BlockLen+7)
	for i := range big {
		big[i] = Posting{Doc: uint32(i * 2), Positions: []uint32{uint32(i % 5)}}
	}
	if rec, err := EncodeV2(big); err == nil {
		f.Add(rec)
	}
	// ...and with malformed prefixes the decoder must reject cleanly.
	f.Add([]byte{})
	f.Add([]byte{0x80})                                                                         // truncated uvarint
	f.Add([]byte{0x01, 0xff, 0xff, 0xff})                                                       // df huge, body truncated
	f.Add([]byte{0x00, 0x02, 0x00})                                                             // zero doc gap
	f.Add([]byte{0x00, 0x00, 0x02, 0x00})                                                       // v2 magic, truncated header
	f.Add([]byte{0x00, 0x00, 0x07, 0x01, 0x01})                                                 // unknown version byte
	f.Add([]byte{0x00, 0x00, 0x02, 0x02, 0x02, 0x01, 0x02, 0x00, 0x02, 0x01, 0x01, 0x01, 0x01}) // v2, zero lastDocDelta

	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodeAll(data)
		if err != nil {
			return // rejected: the only acceptable failure mode
		}
		enc, err := Encode(ps)
		if err != nil {
			t.Fatalf("decoded postings do not re-encode: %v", err)
		}
		ps2, err := DecodeAll(enc)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if !reflect.DeepEqual(ps, ps2) {
			t.Fatalf("round trip changed postings:\n  first  %v\n  second %v", ps, ps2)
		}
		// The streaming decoder must agree with the in-memory one on
		// canonical input.
		sr := NewStreamReader(bytes.NewReader(enc))
		var streamed []Posting
		for {
			p, ok := sr.Next()
			if !ok {
				break
			}
			streamed = append(streamed, p)
		}
		if sr.Err() != nil {
			t.Fatalf("stream decode of canonical record failed: %v", sr.Err())
		}
		if len(streamed) != len(ps) {
			t.Fatalf("stream decoded %d postings, in-memory %d", len(streamed), len(ps))
		}
		for i := range ps {
			if streamed[i].Doc != ps[i].Doc || !reflect.DeepEqual(streamed[i].Positions, ps[i].Positions) {
				t.Fatalf("posting %d: stream %v vs in-memory %v", i, streamed[i], ps[i])
			}
		}
		// The block re-encoding must round-trip the same structure...
		encV2, err := EncodeV2(ps)
		if err != nil {
			t.Fatalf("decoded postings do not re-encode as v2: %v", err)
		}
		ps3, err := DecodeAll(encV2)
		if err != nil {
			t.Fatalf("v2 re-encoding does not decode: %v", err)
		}
		if !reflect.DeepEqual(ps, ps3) {
			t.Fatalf("v2 round trip changed postings:\n  first  %v\n  second %v", ps, ps3)
		}
		if len(ps) == 0 {
			return
		}
		// ...and Advance must agree with a linear scan: for each posting
		// doc d (and d+1), a fresh Advance walk from the start must land
		// exactly where the decoded slice says. This is the map-oracle
		// form: ps IS the oracle.
		br, ok := OpenBlockReader(encV2)
		if !ok {
			t.Fatal("v2 encoding not detected as v2")
		}
		idx := 0
		for _, delta := range []uint32{0, 1} {
			br, _ = OpenBlockReader(encV2)
			idx = 0
			for idx < len(ps) {
				target := ps[idx].Doc + delta
				want := idx
				for want < len(ps) && ps[want].Doc < target {
					want++
				}
				p, ok := br.Advance(target)
				if want == len(ps) {
					if ok {
						t.Fatalf("Advance(%d) = %v, want exhausted", target, p)
					}
					break
				}
				if !ok {
					t.Fatalf("Advance(%d) exhausted early, want doc %d (err %v)", target, ps[want].Doc, br.Err())
				}
				if p.Doc != ps[want].Doc || !reflect.DeepEqual(p.Positions, ps[want].Positions) {
					t.Fatalf("Advance(%d) = %v, want %v", target, p, ps[want])
				}
				idx = want + 1
			}
			if br.Err() != nil {
				t.Fatalf("advance walk failed: %v", br.Err())
			}
		}
		// EncodeAuto must accept anything the others do, and its output —
		// whichever version the density heuristic picks, including the v3
		// bitmap for dense lists — must decode back to the same structure.
		encAuto, err := EncodeAuto(ps)
		if err != nil {
			t.Fatalf("decoded postings do not re-encode with EncodeAuto: %v", err)
		}
		ps4, err := DecodeAll(encAuto)
		if err != nil {
			t.Fatalf("EncodeAuto output does not decode: %v", err)
		}
		if !reflect.DeepEqual(ps, ps4) {
			t.Fatalf("EncodeAuto round trip changed postings:\n  first  %v\n  second %v", ps, ps4)
		}
		if len(ps) > BlockLen && bitmapWins(ps) && !IsV3(encAuto) {
			t.Fatal("EncodeAuto did not pick v3 for a dense long list")
		}
	})
}

// FuzzBitmapRoundTrip throws arbitrary bytes at the v3 bitmap decoder.
// The contract: any input either fails with a typed error or decodes to
// postings that survive a v3 re-encode byte-identically (the encoder is
// canonical), agree with the v2 block encoding of the same list (the
// differential oracle), and answer Advance exactly as a linear Next walk
// over the decoded slice predicts (the map-oracle form).
func FuzzBitmapRoundTrip(f *testing.F) {
	for _, n := range []int{1, 2, 64, 65, 300} {
		ps := make([]Posting, n)
		for i := range ps {
			ps[i] = Posting{Doc: uint32(i * 2), Positions: []uint32{uint32(i % 3)}}
		}
		rec, err := EncodeV3(ps)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rec)
	}
	f.Add([]byte{0x00, 0x00, 0x03})                               // bare magic
	f.Add([]byte{0x00, 0x00, 0x03, 0x01, 0x01, 0x00})             // span 0
	f.Add([]byte{0x00, 0x00, 0x03, 0x01, 0x01, 0x01, 0x00, 0xff}) // truncated words

	f.Fuzz(func(t *testing.T, data []byte) {
		if !IsV3(data) {
			// Re-frame arbitrary bytes as a v3 body so the fuzzer spends
			// its budget inside the bitmap decoder.
			data = append([]byte{0x00, 0x00, 0x03}, data...)
		}
		br, ok := OpenBitmapReader(data)
		if !ok {
			return
		}
		var ps []Posting
		for {
			p, pok := br.Next()
			if !pok {
				break
			}
			ps = append(ps, p)
		}
		if br.Err() != nil {
			return // rejected: the only acceptable failure mode
		}
		if uint64(len(ps)) != br.DF() {
			t.Fatalf("clean iteration yielded %d postings, header df=%d", len(ps), br.DF())
		}
		if len(ps) == 0 {
			t.Fatal("v3 record decoded clean with zero postings")
		}
		// Structural round trip: re-encode, re-decode, exact agreement.
		// (Byte equality is not required — the reader tolerates
		// non-minimal header varints, which the encoder normalizes.)
		enc, err := EncodeV3(ps)
		if err != nil {
			t.Fatalf("decoded postings do not re-encode: %v", err)
		}
		ps3, err := DecodeAll(enc)
		if err != nil || !reflect.DeepEqual(ps, ps3) {
			t.Fatalf("v3 round trip changed postings (err %v):\n  first  %v\n  second %v", err, ps, ps3)
		}
		// Differential oracle: the v2 encoding must decode identically.
		encV2, err := EncodeV2(ps)
		if err != nil {
			t.Fatalf("v2 re-encode failed: %v", err)
		}
		ps2, err := DecodeAll(encV2)
		if err != nil || !reflect.DeepEqual(ps, ps2) {
			t.Fatalf("v2 oracle disagrees (err %v):\n  v3 %v\n  v2 %v", err, ps, ps2)
		}
		// Advance-vs-Next map oracle at every posting doc and doc+1.
		for _, delta := range []uint32{0, 1} {
			br, _ = OpenBitmapReader(data)
			idx := 0
			for idx < len(ps) {
				target := ps[idx].Doc + delta
				want := idx
				for want < len(ps) && ps[want].Doc < target {
					want++
				}
				p, ok := br.Advance(target)
				if want == len(ps) {
					if ok {
						t.Fatalf("Advance(%d) = %v, want exhausted", target, p)
					}
					break
				}
				if !ok {
					t.Fatalf("Advance(%d) exhausted early, want doc %d (err %v)", target, ps[want].Doc, br.Err())
				}
				if p.Doc != ps[want].Doc || !reflect.DeepEqual(p.Positions, ps[want].Positions) {
					t.Fatalf("Advance(%d) = %v, want %v", target, p, ps[want])
				}
				idx = want + 1
			}
			if br.Err() != nil {
				t.Fatalf("advance walk failed: %v", br.Err())
			}
		}
	})
}
