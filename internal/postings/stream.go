package postings

import (
	"encoding/binary"
	"io"
)

// StreamReader decodes an inverted-list record from an io.Reader
// instead of a byte slice, so a record chunked across multiple store
// objects can be scanned without materializing it — the incremental
// retrieval of large aggregate objects that the paper's §6 proposes
// for document-at-a-time processing.
type StreamReader struct {
	r    io.Reader
	buf  [1]byte
	ctf  uint64
	df   uint64
	seen uint64
	prev int64
	err  error
}

// NewStreamReader prepares a streaming decoder; the header is read
// eagerly. Check Err before trusting CTF/DF.
func NewStreamReader(r io.Reader) *StreamReader {
	sr := &StreamReader{r: r, prev: -1}
	sr.ctf = sr.uvarint()
	sr.df = sr.uvarint()
	return sr
}

// ReadByte implements io.ByteReader over the wrapped reader.
func (sr *StreamReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(sr.r, sr.buf[:]); err != nil {
		return 0, err
	}
	return sr.buf[0], nil
}

func (sr *StreamReader) uvarint() uint64 {
	if sr.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(sr)
	if err != nil {
		if err == io.EOF {
			err = ErrCorrupt
		}
		sr.err = err
		return 0
	}
	return v
}

// CTF returns the collection term frequency from the header.
func (sr *StreamReader) CTF() uint64 { return sr.ctf }

// DF returns the document frequency from the header.
func (sr *StreamReader) DF() uint64 { return sr.df }

// Err returns the first decoding error encountered, if any.
func (sr *StreamReader) Err() error {
	if sr.err == io.EOF {
		return nil
	}
	return sr.err
}

// Next decodes the next posting, mirroring Reader.Next.
func (sr *StreamReader) Next() (Posting, bool) {
	if sr.err != nil || sr.seen >= sr.df {
		return Posting{}, false
	}
	gap := sr.uvarint()
	if sr.err != nil {
		return Posting{}, false
	}
	if gap == 0 {
		sr.err = ErrCorrupt
		return Posting{}, false
	}
	doc := sr.prev + int64(gap)
	if doc > 0xFFFFFFFF {
		sr.err = ErrCorrupt
		return Posting{}, false
	}
	sr.prev = doc
	tf := sr.uvarint()
	if sr.err != nil {
		return Posting{}, false
	}
	// The stream length is unknown, so bound the pre-allocation with a
	// fixed hint; append grows it for genuinely large position lists,
	// while a corrupt tf header cannot demand gigabytes up front.
	capHint := tf
	if capHint > 1024 {
		capHint = 1024
	}
	positions := make([]uint32, 0, capHint)
	prevPos := int64(-1)
	for i := uint64(0); i < tf; i++ {
		pg := sr.uvarint()
		if sr.err != nil {
			return Posting{}, false
		}
		if pg == 0 {
			sr.err = ErrCorrupt
			return Posting{}, false
		}
		pos := prevPos + int64(pg)
		if pos > 0xFFFFFFFF {
			sr.err = ErrCorrupt
			return Posting{}, false
		}
		positions = append(positions, uint32(pos))
		prevPos = pos
	}
	sr.seen++
	return Posting{Doc: uint32(doc), Positions: positions}, true
}
