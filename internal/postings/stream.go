package postings

import (
	"encoding/binary"
	"io"
)

// streamBufLen is the read-ahead window. One kilobyte amortizes the
// per-read overhead of chunked sources (which copy into the buffer)
// while staying an embedded array, so a StreamReader is still a single
// allocation.
const streamBufLen = 1024

// StreamReader decodes an inverted-list record from an io.Reader
// instead of a byte slice, so a record chunked across multiple store
// objects can be scanned without materializing it — the incremental
// retrieval of large aggregate objects that the paper's §6 proposes
// for document-at-a-time processing.
//
// Decoding is buffered: the reader pulls up to streamBufLen bytes at a
// time into an embedded scratch buffer and decodes varints from that
// window, instead of issuing one Read per byte.
type StreamReader struct {
	r    io.Reader
	buf  [streamBufLen]byte
	pos  int // next unread byte in buf
	lim  int // valid bytes in buf
	eof  bool
	ctf  uint64
	df   uint64
	seen uint64
	prev int64
	err  error
}

// NewStreamReader prepares a streaming decoder; the header is read
// eagerly. Check Err before trusting CTF/DF.
func NewStreamReader(r io.Reader) *StreamReader {
	sr := &StreamReader{r: r, prev: -1}
	sr.ctf = sr.uvarint()
	sr.df = sr.uvarint()
	// A versioned record (v2 blocks, v3 bitmap) starts with two zero
	// bytes followed by more data; decoded as v1 that would read as an
	// empty list and silently drop every posting. Reject it — versioned
	// records are random access and never stream through this reader.
	if sr.err == nil && sr.ctf == 0 && sr.df == 0 {
		if sr.pos < sr.lim || !sr.eof {
			if _, err := sr.ReadByte(); err == nil {
				sr.err = ErrCorrupt
			}
		}
	}
	return sr
}

// fill slides unread bytes to the front of the buffer and reads more
// from the source, blocking until at least one new byte arrives, EOF,
// or an error.
func (sr *StreamReader) fill() {
	if sr.pos > 0 {
		copy(sr.buf[:], sr.buf[sr.pos:sr.lim])
		sr.lim -= sr.pos
		sr.pos = 0
	}
	for sr.lim < len(sr.buf) {
		n, err := sr.r.Read(sr.buf[sr.lim:])
		sr.lim += n
		if err == io.EOF {
			sr.eof = true
			return
		}
		if err != nil {
			sr.err = err
			return
		}
		if n > 0 {
			return
		}
	}
}

// ReadByte implements io.ByteReader over the buffered window.
func (sr *StreamReader) ReadByte() (byte, error) {
	for sr.pos >= sr.lim {
		if sr.err != nil {
			return 0, sr.err
		}
		if sr.eof {
			return 0, io.EOF
		}
		sr.fill()
	}
	b := sr.buf[sr.pos]
	sr.pos++
	return b, nil
}

func (sr *StreamReader) uvarint() uint64 {
	for sr.err == nil {
		v, n := binary.Uvarint(sr.buf[sr.pos:sr.lim])
		if n > 0 {
			sr.pos += n
			return v
		}
		if n < 0 {
			sr.err = ErrCorrupt
			return 0
		}
		// Window too small for the varint: a truncated stream is
		// corruption, otherwise refill and retry.
		if sr.eof {
			sr.err = ErrCorrupt
			return 0
		}
		sr.fill()
	}
	return 0
}

// CTF returns the collection term frequency from the header.
func (sr *StreamReader) CTF() uint64 { return sr.ctf }

// DF returns the document frequency from the header.
func (sr *StreamReader) DF() uint64 { return sr.df }

// Err returns the first decoding error encountered, if any.
func (sr *StreamReader) Err() error {
	if sr.err == io.EOF {
		return nil
	}
	return sr.err
}

// Next decodes the next posting, mirroring Reader.Next.
func (sr *StreamReader) Next() (Posting, bool) {
	if sr.err != nil || sr.seen >= sr.df {
		return Posting{}, false
	}
	gap := sr.uvarint()
	if sr.err != nil {
		return Posting{}, false
	}
	if gap == 0 {
		sr.err = ErrCorrupt
		return Posting{}, false
	}
	doc := sr.prev + int64(gap)
	if doc > 0xFFFFFFFF {
		sr.err = ErrCorrupt
		return Posting{}, false
	}
	sr.prev = doc
	tf := sr.uvarint()
	if sr.err != nil {
		return Posting{}, false
	}
	// The stream length is unknown, so bound the pre-allocation with a
	// fixed hint; append grows it for genuinely large position lists,
	// while a corrupt tf header cannot demand gigabytes up front.
	capHint := tf
	if capHint > 1024 {
		capHint = 1024
	}
	positions := make([]uint32, 0, capHint)
	prevPos := int64(-1)
	for i := uint64(0); i < tf; i++ {
		pg := sr.uvarint()
		if sr.err != nil {
			return Posting{}, false
		}
		if pg == 0 {
			sr.err = ErrCorrupt
			return Posting{}, false
		}
		pos := prevPos + int64(pg)
		if pos > 0xFFFFFFFF {
			sr.err = ErrCorrupt
			return Posting{}, false
		}
		positions = append(positions, uint32(pos))
		prevPos = pos
	}
	sr.seen++
	return Posting{Doc: uint32(doc), Positions: positions}, true
}
