// Package core is the integrated system: the INQUERY retrieval engine
// wired to an interchangeable inverted-file storage backend — the
// original custom B-tree keyed file, or the Mneme persistent object
// store with the paper's three-pool partition. The package owns index
// construction, engine open/search, and the incremental-update path
// that Mneme's data model enables.
package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/btree"
	"repro/internal/mneme"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// RecordStreamer is implemented by backends that can stream a record's
// bytes incrementally instead of materializing them. The Mneme backend
// streams chunked records chunk by chunk.
type RecordStreamer interface {
	// StreamRecord returns a reader over the record bytes, or ok=false
	// when the record must be fetched whole.
	StreamRecord(ref uint64) (r io.Reader, ok bool)
}

// RecordRanger is implemented by backends that can serve a record's
// bytes by random-access range, faulting in only the storage chunks the
// requested ranges overlap. The Mneme backend implements it for
// indexed chunked records; block-format readers use it to skip chunks
// along with the blocks they hold.
type RecordRanger interface {
	// RangeRecord returns range access over the record, or ok=false
	// when the ref is not an indexed chunked record.
	RangeRecord(ref uint64) (cr *mneme.ChunkRange, ok bool, err error)
}

// BackendKind selects the inverted-file storage manager.
type BackendKind uint8

const (
	// BackendBTree is the original custom keyed-file package.
	BackendBTree BackendKind = iota + 1
	// BackendMneme is the persistent object store.
	BackendMneme
)

// String names the backend kind.
func (k BackendKind) String() string {
	switch k {
	case BackendBTree:
		return "btree"
	case BackendMneme:
		return "mneme"
	}
	return "invalid"
}

// ParseBackendKind maps a backend name ("btree" or "mneme") to its
// kind. It is the inverse of String and the one place command-line
// tools should translate user-supplied backend names.
func ParseBackendKind(s string) (BackendKind, error) {
	switch s {
	case "btree":
		return BackendBTree, nil
	case "mneme":
		return BackendMneme, nil
	}
	return 0, fmt.Errorf("core: unknown backend %q (want btree or mneme)", s)
}

// MarshalText implements encoding.TextMarshaler.
func (k BackendKind) MarshalText() ([]byte, error) {
	if k != BackendBTree && k != BackendMneme {
		return nil, fmt.Errorf("core: invalid backend kind %d", uint8(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *BackendKind) UnmarshalText(text []byte) error {
	v, err := ParseBackendKind(string(text))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Pool size thresholds from the paper's analysis (§3.3): "approximately
// 50% of the inverted lists are 12 bytes or less"; "All inverted lists
// larger than 4 Kbytes were allocated ... in a large object pool".
const (
	SmallListMax  = 12
	MediumListMax = 4096
)

// Mneme pool names used by the integrated system.
const (
	PoolNameSmall  = "small"
	PoolNameMedium = "medium"
	PoolNameLarge  = "large"
)

// PoolForSize returns the pool that stores a record of the given size.
func PoolForSize(n int) string {
	switch {
	case n <= SmallListMax:
		return PoolNameSmall
	case n <= MediumListMax:
		return PoolNameMedium
	default:
		return PoolNameLarge
	}
}

// BufferPlan allocates buffer capacity to the three pools. Zero values
// disable caching for the pool ("Mneme, No Cache").
type BufferPlan struct {
	SmallBytes  int64
	MediumBytes int64
	LargeBytes  int64
}

// NoCache is the all-zero buffer plan.
var NoCache = BufferPlan{}

// ErrNoUpdate is returned by backends that do not support incremental
// modification. The paper: "addition or deletion of a single document to
// or from an existing collection is not directly supported [by the
// B-tree version] and requires the entire document collection to be
// re-indexed".
var ErrNoUpdate = errors.New("core: backend does not support incremental update")

// Pin is a per-caller handle over record reservations made by
// Backend.Reserve. Releasing it drops exactly the pins it made, so
// concurrent queries' reservations are independent.
type Pin interface {
	Release()
}

// noPin is the empty reservation, used when reservation is disabled or
// the backend has no record cache.
type noPin struct{}

func (noPin) Release() {}

// Backend abstracts the inverted-file record manager. Refs are opaque
// handles stored in the hash dictionary: a term id key for the B-tree, a
// Mneme object identifier for the object store.
type Backend interface {
	Kind() BackendKind
	// Fetch returns the record bytes for a ref.
	Fetch(ref uint64) ([]byte, error)
	// Reserve pins already-resident records (Mneme only; no-op for the
	// B-tree, which has no record cache) and returns the handle that
	// releases them.
	Reserve(refs []uint64) Pin
	// DropCaches empties any record caches (between measured runs).
	DropCaches() error
	// BufferStats reports per-pool buffer counters (empty for B-tree).
	BufferStats() map[string]mneme.BufferStats
	// ResetBufferStats zeroes the counters.
	ResetBufferStats()
	// SizeBytes is the on-disk size of the index file.
	SizeBytes() int64
	// Store allocates a new record and returns its ref.
	Store(rec []byte) (uint64, error)
	// Update replaces a record, possibly moving it (the returned ref
	// supersedes the old one). Backends may return ErrNoUpdate.
	Update(ref uint64, rec []byte) (uint64, error)
	// Remove deletes a record. Backends may return ErrNoUpdate.
	Remove(ref uint64) error
	// Flush persists backend state.
	Flush() error
	Close() error
	// SetRecorder attaches (nil detaches) a trace recorder to the
	// backend's storage layer — buffer hit/miss and fault-in spans for
	// Mneme, node-page reads for the B-tree. Recorders are for
	// single-stream diagnostic tracing only.
	SetRecorder(obs.Recorder)
}

// --- B-tree backend ---

// btreeBackend wraps the custom keyed-file package. It performs no
// user-space caching of inverted-list records across accesses, exactly
// like the original INQUERY.
type btreeBackend struct {
	tree *btree.Tree
}

// CreateBTreeBackend makes an empty B-tree index file.
func CreateBTreeBackend(fs *vfs.FS, name string) (*btreeBackend, *btree.Tree, error) {
	tr, err := btree.Create(fs, name, btree.Options{})
	if err != nil {
		return nil, nil, err
	}
	return &btreeBackend{tree: tr}, tr, nil
}

// OpenBTreeBackend opens an existing B-tree index file.
func OpenBTreeBackend(fs *vfs.FS, name string) (Backend, error) {
	tr, err := btree.Open(fs, name, btree.Options{})
	if err != nil {
		return nil, err
	}
	return &btreeBackend{tree: tr}, nil
}

func (b *btreeBackend) Kind() BackendKind { return BackendBTree }

func (b *btreeBackend) Fetch(ref uint64) ([]byte, error) {
	rec, ok, err := b.tree.Lookup(uint32(ref))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: btree record %d missing", ref)
	}
	return rec, nil
}

func (b *btreeBackend) Reserve([]uint64) Pin                      { return noPin{} }
func (b *btreeBackend) DropCaches() error                         { return nil }
func (b *btreeBackend) BufferStats() map[string]mneme.BufferStats { return nil }
func (b *btreeBackend) ResetBufferStats()                         {}
func (b *btreeBackend) SizeBytes() int64                          { return b.tree.SizeBytes() }
func (b *btreeBackend) Store([]byte) (uint64, error)              { return 0, ErrNoUpdate }
func (b *btreeBackend) Update(uint64, []byte) (uint64, error)     { return 0, ErrNoUpdate }
func (b *btreeBackend) Remove(uint64) error                       { return ErrNoUpdate }
func (b *btreeBackend) Flush() error                              { return b.tree.Sync() }
func (b *btreeBackend) Close() error                              { return b.tree.Close() }
func (b *btreeBackend) SetRecorder(r obs.Recorder)                { b.tree.SetRecorder(r) }

// --- Mneme backend ---

// chunkedRefBit flags a dictionary ref whose record is stored as a
// linked list of chunk objects (inter-object references) rather than a
// single contiguous object — the paper's §6 proposal for breaking
// large inverted lists into manageable pieces. chunkedV2RefBit flags
// the indexed variant: the head object carries a chunk table, so a
// reader can fault in exactly the chunks a byte range overlaps instead
// of walking the list front to back. New chunked records are written
// indexed; linked refs from older collections remain readable.
const (
	chunkedRefBit   = uint64(1) << 63
	chunkedV2RefBit = uint64(1) << 62
)

// mnemeBackend wraps the persistent object store with the paper's
// three-pool configuration.
type mnemeBackend struct {
	store *mneme.Store
	// chunkBytes > 0 stores records larger than MediumListMax as chunk
	// lists with this payload size per chunk.
	chunkBytes int
}

// MnemeConfig returns the paper's store layout: 16-byte slots packed 255
// to a 4 Kbyte segment (small), 8 Kbyte packed segments (medium), and
// one segment per object (large), with the given buffer plan.
func MnemeConfig(plan BufferPlan) mneme.Config {
	return mneme.Config{Pools: []mneme.PoolConfig{
		{Name: PoolNameSmall, Kind: mneme.PoolSmall, SegmentBytes: 4096, SlotBytes: 16, BufferBytes: plan.SmallBytes},
		{Name: PoolNameMedium, Kind: mneme.PoolMedium, SegmentBytes: 8192, BufferBytes: plan.MediumBytes},
		{Name: PoolNameLarge, Kind: mneme.PoolLarge, BufferBytes: plan.LargeBytes},
	}}
}

// SinglePoolConfig is the ablation layout: one medium pool takes every
// record (oversize records get dedicated segments), with one buffer.
func SinglePoolConfig(bufferBytes int64) mneme.Config {
	return mneme.Config{Pools: []mneme.PoolConfig{
		{Name: PoolNameMedium, Kind: mneme.PoolMedium, SegmentBytes: 8192, BufferBytes: bufferBytes},
	}}
}

// CreateMnemeBackend makes an empty Mneme index file.
func CreateMnemeBackend(fs *vfs.FS, name string, cfg mneme.Config) (*mnemeBackend, error) {
	st, err := mneme.Create(fs, name, cfg)
	if err != nil {
		return nil, err
	}
	return &mnemeBackend{store: st}, nil
}

// OpenMnemeBackend opens an existing Mneme index file, applies the
// buffer plan, and configures chunking (which must match build time).
func OpenMnemeBackend(fs *vfs.FS, name string, plan BufferPlan, chunkBytes int) (Backend, error) {
	st, err := mneme.Open(fs, name)
	if err != nil {
		return nil, err
	}
	b := &mnemeBackend{store: st, chunkBytes: chunkBytes}
	if err := b.SetBufferPlan(plan); err != nil {
		return nil, err
	}
	return b, nil
}

// SetBufferPlan adjusts buffer capacities on the open store; pools the
// store lacks (single-pool ablation) are skipped.
func (b *mnemeBackend) SetBufferPlan(plan BufferPlan) error {
	caps := map[string]int64{
		PoolNameSmall:  plan.SmallBytes,
		PoolNameMedium: plan.MediumBytes,
		PoolNameLarge:  plan.LargeBytes,
	}
	for _, name := range b.store.PoolNames() {
		if err := b.store.SetBufferCapacity(name, caps[name]); err != nil {
			return err
		}
	}
	return nil
}

// Mneme exposes the underlying object store (for experiments and tools).
func (b *mnemeBackend) Mneme() *mneme.Store { return b.store }

// SetChunking enables chunked storage for records above MediumListMax,
// with the given payload bytes per chunk. Build and open must agree.
func (b *mnemeBackend) SetChunking(chunkBytes int) { b.chunkBytes = chunkBytes }

// mnemeID converts a dictionary ref to an object identifier.
func mnemeID(ref uint64) mneme.ObjectID {
	return mneme.ObjectID(ref &^ (chunkedRefBit | chunkedV2RefBit))
}

// isChunked reports whether a ref names a linked chunked record.
func isChunked(ref uint64) bool { return ref&chunkedRefBit != 0 }

// isChunkedV2 reports whether a ref names an indexed chunked record.
func isChunkedV2(ref uint64) bool { return ref&chunkedV2RefBit != 0 }

func (b *mnemeBackend) Kind() BackendKind { return BackendMneme }

func (b *mnemeBackend) Fetch(ref uint64) ([]byte, error) {
	if isChunkedV2(ref) {
		return mneme.ReadChunkedIndexed(b.store, mnemeID(ref))
	}
	if isChunked(ref) {
		return mneme.ReadChunked(b.store, mnemeID(ref))
	}
	return b.store.Get(mnemeID(ref))
}

// RangeRecord implements RecordRanger for indexed chunked records,
// returning random access over the record bytes that faults in only the
// chunks actually read.
func (b *mnemeBackend) RangeRecord(ref uint64) (*mneme.ChunkRange, bool, error) {
	if !isChunkedV2(ref) {
		return nil, false, nil
	}
	cr, err := mneme.OpenChunkRange(b.store, mnemeID(ref))
	if err != nil {
		return nil, true, err
	}
	return cr, true, nil
}

// StreamRecord implements RecordStreamer for chunked records: chunks
// are fetched lazily as the stream is consumed, so only one chunk's
// segment needs to be buffered at a time.
func (b *mnemeBackend) StreamRecord(ref uint64) (io.Reader, bool) {
	if !isChunked(ref) {
		return nil, false
	}
	return mneme.ChunkedReader(b.store, mnemeID(ref)), true
}

func (b *mnemeBackend) Reserve(refs []uint64) Pin {
	ids := make([]mneme.ObjectID, len(refs))
	for i, r := range refs {
		ids[i] = mnemeID(r) // for a chunked record this pins the head
	}
	return b.store.Reserve(ids)
}

func (b *mnemeBackend) DropCaches() error { return b.store.DropBuffers() }

func (b *mnemeBackend) BufferStats() map[string]mneme.BufferStats {
	return b.store.BufferStats()
}

func (b *mnemeBackend) ResetBufferStats() { b.store.ResetBufferStats() }

func (b *mnemeBackend) SizeBytes() int64 { return b.store.SizeBytes() }

// poolName returns the pool a record of size n belongs to, restricted
// to pools the store actually has.
func (b *mnemeBackend) poolName(n int) string {
	want := PoolForSize(n)
	for _, name := range b.store.PoolNames() {
		if name == want {
			return want
		}
	}
	// Single-pool ablation: everything goes to the medium pool.
	return b.store.PoolNames()[0]
}

func (b *mnemeBackend) Store(rec []byte) (uint64, error) {
	if b.chunkBytes > 0 && len(rec) > MediumListMax {
		head, err := mneme.WriteChunkedIndexed(b.store, b.poolName(b.chunkBytes+4), rec, b.chunkBytes)
		if err != nil {
			return 0, err
		}
		return uint64(head) | chunkedV2RefBit, nil
	}
	id, err := b.store.Allocate(b.poolName(len(rec)), rec)
	return uint64(id), err
}

// Update rewrites a record; when the new size falls into a different
// pool (or crosses the chunking threshold), the object is deleted and
// re-allocated, yielding a new ref that the caller must store back into
// the dictionary entry.
func (b *mnemeBackend) Update(ref uint64, rec []byte) (uint64, error) {
	if isChunked(ref) || isChunkedV2(ref) || (b.chunkBytes > 0 && len(rec) > MediumListMax) {
		if err := b.Remove(ref); err != nil {
			return 0, err
		}
		return b.Store(rec)
	}
	id := mnemeID(ref)
	cur, err := b.store.PoolOf(id)
	if err != nil {
		return 0, err
	}
	if b.poolName(len(rec)) == cur {
		if err := b.store.Modify(id, rec); err == nil {
			return ref, nil
		} else if !errors.Is(err, mneme.ErrWrongPool) {
			return 0, err
		}
	}
	// Cross-pool move.
	if err := b.store.Delete(id); err != nil {
		return 0, err
	}
	nid, err := b.store.Allocate(b.poolName(len(rec)), rec)
	return uint64(nid), err
}

func (b *mnemeBackend) Remove(ref uint64) error {
	if isChunked(ref) || isChunkedV2(ref) {
		// An indexed head's first word doubles as the next pointer, so
		// the linked-list walk frees both layouts.
		return mneme.DeleteChunked(b.store, mnemeID(ref))
	}
	return b.store.Delete(mnemeID(ref))
}

func (b *mnemeBackend) Flush() error { return b.store.Flush() }
func (b *mnemeBackend) Close() error { return b.store.Close() }

func (b *mnemeBackend) SetRecorder(r obs.Recorder) { b.store.SetRecorder(r) }
