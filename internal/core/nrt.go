package core

// Near-real-time indexing: an LSM-style write path over the batch
// engine. Documents land in a searchable in-memory memtable backed by a
// CRC'd write-ahead log (acknowledged only after Append+Sync), and
// size/time triggers flush the memtable through the ordinary batch
// builder into an immutable segment — a full mini-collection whose
// records carry global doc IDs, so query iterators simply concatenate
// per-segment lists (inference.Chain) with the memtable tail. A
// background compactor merges flushed segments with the mixed-version
// merge-upgrade machinery (decoded v1/v2 inputs re-encoded with
// EncodeAuto).
//
// Durability follows Mneme's commit-point discipline on a file system
// with no rename: every mutation of the durable state is
// write-new-then-delete-old, committed by a self-checksummed
// generational manifest. A crash at any write/sync ordinal reboots
// into either the old generation or the new one, never a hybrid, and
// never loses an acknowledged document: acked docs are always covered
// by (manifest segments) + (that manifest's WAL generation).
//
// On-disk layout for an NRT collection <name>:
//
//	<name>.nrt.<gen>  manifest: magic | crc32(json) | len | json
//	<name>.wal.<gen>  write-ahead log of un-flushed documents
//	<name>.g<seq>.*   flushed segments (.lex/.doc + .bt or .mn)
//	<name>.*          the optional batch-built base collection,
//	                  wrapped as segment zero
//
// Open picks the highest-generation manifest that validates and
// removes everything the chosen generation does not reference —
// leftovers of a torn flush or compaction.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/mneme"
	"repro/internal/obs"
	"repro/internal/postings"
	"repro/internal/resilience"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

// NRTConfig sets the write path's triggers. The zero value is fully
// manual: flush and compaction run only when Flush/Compact are called.
type NRTConfig struct {
	// FlushDocs flushes the memtable when it holds this many documents
	// (checked after every ingest batch; 0 disables the trigger).
	FlushDocs int
	// FlushBytes flushes when the memtable's approximate heap footprint
	// exceeds this many bytes (0 disables).
	FlushBytes int64
	// CompactSegments compacts when this many flushed (non-base)
	// segments have accumulated (0 disables auto-compaction).
	CompactSegments int
	// FlushEvery, when positive, runs the size-independent time trigger:
	// a background goroutine flushes (and, with CompactSegments set,
	// compacts) at this period until Close.
	FlushEvery time.Duration
}

// nrtManifest is the durable commit point: the segment roster and the
// WAL generation that together cover every acknowledged document.
type nrtManifest struct {
	Gen      uint64           `json:"gen"`
	WalGen   uint64           `json:"wal_gen"`
	NextSeg  uint64           `json:"next_seg"`
	Docs     uint32           `json:"docs"` // documents covered by segments
	Segments []nrtManifestSeg `json:"segments"`
}

type nrtManifestSeg struct {
	Name string `json:"name"`
	Base uint32 `json:"base"`
	Docs uint32 `json:"docs"`
	// BaseColl marks the wrapped batch-built collection: it is never
	// compacted or deleted by the NRT machinery.
	BaseColl bool `json:"base_collection,omitempty"`
}

const nrtMagic = "NRT1"

// nrtSegment is one opened segment: an ordinary Engine over a
// contiguous global doc range [base, base+docs).
type nrtSegment struct {
	name     string
	base     uint32
	docs     uint32
	baseColl bool
	eng      *Engine
}

// FlushStat records one flush's deterministic cost split: the I/O of
// building and committing the segment (concurrent with queries) and
// the I/O inside the query-blocking flip window.
type FlushStat struct {
	Docs    int       `json:"docs"`
	Toks    int64     `json:"toks"`
	BuildIO vfs.Stats `json:"build_io"`
	PauseIO vfs.Stats `json:"pause_io"`
}

// NRTStats is the write-path block of an NRT engine's Snapshot.
type NRTStats struct {
	Gen         uint64 `json:"gen"`
	WalGen      uint64 `json:"wal_gen"`
	WalEntries  int64  `json:"wal_entries"`
	MemDocs     int    `json:"memtable_docs"`
	MemBytes    int64  `json:"memtable_bytes"`
	Ingested    int64  `json:"ingested_docs"`
	Flushes     int64  `json:"flushes"`
	Compactions int64  `json:"compactions"`
	// WalTruncFrames / WalTruncBytes count what the torn-tail
	// truncation at open discarded from the replayed WAL — zero after
	// a clean shutdown, non-zero exactly when a crash cut an
	// unacknowledged append (or worse) out of the log.
	WalTruncFrames int64        `json:"wal_trunc_frames,omitempty"`
	WalTruncBytes  int64        `json:"wal_trunc_bytes,omitempty"`
	Segments       []NRTSegStat `json:"segments"`
}

// NRTSegStat describes one live segment.
type NRTSegStat struct {
	Name           string `json:"name"`
	Base           uint32 `json:"base"`
	Docs           uint32 `json:"docs"`
	BaseCollection bool   `json:"base_collection,omitempty"`
}

// NRTEngine is a collection that serves queries while ingesting. It
// implements the same Run/Explain/Snapshot/Health surface as Engine,
// so the serving layer treats the two interchangeably.
type NRTEngine struct {
	fs   *vfs.FS
	name string
	kind BackendKind
	an   *textproc.Analyzer
	opts engineOptions
	cfg  NRTConfig

	gate *resilience.Gate // NRT-level admission (segments open ungated)
	agg  atomicCounters
	met  *engineMetrics

	// blocks is one decoded-block cache shared by every segment engine
	// (segments are immutable; each engine's own generation keeps keys
	// distinct, and retired segments' entries age out). results memoizes
	// rankings at the NRT level, keyed by the visibility watermark — a
	// flush or compaction flip preserves rankings by construction, so
	// only ingest (which moves the watermark) changes the key space.
	blocks  *blockCache
	results *resultCache

	ingDocs  *obs.Counter
	ingToks  *obs.Counter
	flushC   *obs.Counter
	flushErr *obs.Counter
	compactC *obs.Counter
	memDocsG *obs.Gauge
	memBytsG *obs.Gauge
	segsG    *obs.Gauge

	// ingestMu serializes every state mutation: ingest, flush, compact,
	// close. Queries never take it.
	ingestMu       sync.Mutex
	closed         bool
	walBroken      bool
	wal            *mneme.WAL
	gen            uint64
	walGen         uint64
	nextSeg        uint64
	ingested       int64
	flushes        int64
	compacts       int64
	walTruncFrames int64
	walTruncBytes  int64
	flushLog       []FlushStat

	// viewMu guards the query view (segs, mem, memBase): queries hold
	// the read lock for their whole evaluation, so flush/compact flips
	// — which take the write lock — can retire and close segment
	// engines with no reader in flight. Lock order: ingestMu → viewMu
	// → pubMu.
	viewMu  sync.RWMutex
	segs    []*nrtSegment
	mem     *memtable
	memBase uint32

	// pubMu guards the visibility watermark and the per-doc statistics
	// queries capture at start: docCount (the watermark), lens (every
	// doc's token count, append-only), totalToks.
	pubMu     sync.Mutex
	docCount  uint32
	lens      []uint32
	totalToks int64

	// Documents not yet flushed, retained for segment builds (tokens)
	// and future WAL generations (raw payloads). Guarded by ingestMu.
	tailToks [][]textproc.Token
	tailRaw  [][]byte

	bgStop chan struct{}
	bgWG   sync.WaitGroup
}

func nrtManName(name string, gen uint64) string { return fmt.Sprintf("%s.nrt.%d", name, gen) }
func nrtWalName(name string, gen uint64) string { return fmt.Sprintf("%s.wal.%d", name, gen) }
func nrtSegName(name string, seq uint64) string { return fmt.Sprintf("%s.g%d", name, seq) }

// OpenNRT opens (or initializes) the near-real-time collection <name>.
// With no manifest present it starts fresh, wrapping an existing
// batch-built collection of the same name as the immutable base
// segment; with a manifest it recovers: the highest generation that
// validates wins, its WAL is replayed into the memtable, and files the
// chosen generation does not reference are removed. Engine options
// apply to every segment except WithMaxInFlight, which gates at the
// NRT level so one admission decision covers the whole query.
func OpenNRT(fs *vfs.FS, name string, kind BackendKind, cfg NRTConfig, opts ...Option) (*NRTEngine, error) {
	var opt engineOptions
	for _, o := range opts {
		o(&opt)
	}
	an := opt.Analyzer
	if an == nil {
		an = textproc.NewAnalyzer()
	}
	e := &NRTEngine{
		fs:   fs,
		name: name,
		kind: kind,
		an:   an,
		opts: opt,
		cfg:  cfg,
		met:  newEngineMetrics(),
		mem:  newMemtable(),
	}
	reg := e.met.reg
	e.ingDocs = reg.Counter("ingested_docs_total")
	e.ingToks = reg.Counter("ingested_tokens_total")
	e.flushC = reg.Counter("flushes_total")
	e.flushErr = reg.Counter("flush_errors_total")
	e.compactC = reg.Counter("compactions_total")
	e.memDocsG = reg.Gauge("memtable_docs")
	e.memBytsG = reg.Gauge("memtable_bytes")
	e.segsG = reg.Gauge("segments")
	if opt.MaxInFlight > 0 {
		e.gate = resilience.NewGate(opt.MaxInFlight, opt.QueueWait)
	}
	if opt.BlockCacheMB > 0 {
		e.blocks = newBlockCache(int64(opt.BlockCacheMB) << 20)
	}
	if opt.ResultCacheEntries > 0 {
		e.results = newResultCache(opt.ResultCacheEntries)
	}

	man := e.loadManifest()
	if man == nil {
		man = &nrtManifest{Gen: 1, WalGen: 1, NextSeg: 1}
		if fs.Exists(name + suffixLexicon) {
			lens, _, err := loadDocMeta(fs, name)
			if err != nil {
				return nil, err
			}
			man.Segments = []nrtManifestSeg{{Name: name, Docs: uint32(len(lens)), BaseColl: true}}
			man.Docs = uint32(len(lens))
		}
		if _, err := e.createWAL(nrtWalName(name, man.WalGen), nil); err != nil {
			return nil, err
		}
		if err := e.writeManifest(man); err != nil {
			return nil, err
		}
	}
	e.gen, e.walGen, e.nextSeg = man.Gen, man.WalGen, man.NextSeg
	e.cleanupOrphans(man)

	for _, ms := range man.Segments {
		eng, err := e.openSegEngine(ms.Name)
		if err != nil {
			e.closeSegs()
			return nil, fmt.Errorf("core: nrt open segment %q: %w", ms.Name, err)
		}
		e.segs = append(e.segs, &nrtSegment{name: ms.Name, base: ms.Base, docs: ms.Docs, baseColl: ms.BaseColl, eng: eng})
		e.lens = append(e.lens, eng.docLens...)
		e.totalToks += eng.total
	}
	e.docCount = man.Docs
	e.memBase = man.Docs
	if int(man.Docs) != len(e.lens) {
		e.closeSegs()
		return nil, fmt.Errorf("core: nrt manifest for %q: %w: segment roster covers %d docs, manifest says %d",
			name, mneme.ErrCorrupt, len(e.lens), man.Docs)
	}

	expect := e.docCount
	wal, err := mneme.OpenWAL(fs, nrtWalName(name, e.walGen), func(p []byte) error {
		id, nr := binary.Uvarint(p)
		if nr <= 0 || uint32(id) != expect {
			return fmt.Errorf("core: nrt wal for %q: %w: entry for doc %d, want %d",
				name, mneme.ErrCorrupt, id, expect)
		}
		text := string(p[nr:])
		toks := an.Tokens(text)
		e.mem.add(uint32(id), toks)
		e.lens = append(e.lens, uint32(len(toks)))
		e.totalToks += int64(len(toks))
		e.tailToks = append(e.tailToks, toks)
		e.tailRaw = append(e.tailRaw, append([]byte(nil), p...))
		e.docCount++
		expect++
		return nil
	})
	if err != nil {
		e.closeSegs()
		return nil, err
	}
	e.wal = wal
	if tb := wal.TruncatedBytes(); tb > 0 {
		e.walTruncFrames, e.walTruncBytes = wal.TruncatedFrames(), tb
		reg.Counter("wal_truncated_frames_total").Add(wal.TruncatedFrames())
		reg.Counter("wal_truncated_bytes_total").Add(tb)
		log.Printf("core: nrt open %q: wal=%s replayed_entries=%d truncated_frames=%d truncated_bytes=%d (torn tail discarded; unacknowledged appends only unless frames>1)",
			name, nrtWalName(name, e.walGen), wal.Entries(), wal.TruncatedFrames(), tb)
	}
	e.refreshGauges()

	if cfg.FlushEvery > 0 {
		e.bgStop = make(chan struct{})
		e.bgWG.Add(1)
		go e.backgroundLoop()
	}
	return e, nil
}

// backgroundLoop is the time trigger: flush (and maybe compact) every
// FlushEvery until Close. Errors are counted, not fatal — the next
// tick retries from the intact old state.
func (e *NRTEngine) backgroundLoop() {
	defer e.bgWG.Done()
	t := time.NewTicker(e.cfg.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-e.bgStop:
			return
		case <-t.C:
			e.ingestMu.Lock()
			if !e.closed {
				if err := e.flushLocked(); err != nil {
					e.flushErr.Add(1)
				} else if e.cfg.CompactSegments > 0 && e.flushedSegs() >= e.cfg.CompactSegments {
					if err := e.compactLocked(); err != nil {
						e.flushErr.Add(1)
					}
				}
			}
			e.ingestMu.Unlock()
		}
	}
}

func (e *NRTEngine) closeSegs() {
	for _, s := range e.segs {
		_ = s.eng.Close()
	}
	e.segs = nil
}

// openSegEngine opens one segment with the NRT engine's resolved
// options, minus admission control (gating happens once, NRT-level)
// and global-stats overrides (the NRT searcher is its own statistics
// authority).
func (e *NRTEngine) openSegEngine(name string) (*Engine, error) {
	res := e.opts
	res.MaxInFlight = 0
	res.QueueWait = 0
	res.Global = nil
	res.Analyzer = e.an
	// Caching is NRT-level: results are memoized against the watermark
	// (not per segment), and all segments share one block-cache budget.
	res.ResultCacheEntries = 0
	res.BlockCacheMB = 0
	res.sharedBlocks = e.blocks
	return Open(e.fs, name, e.kind, func(o *engineOptions) { *o = res })
}

// loadManifest returns the highest-generation manifest that validates,
// or nil when none exists (fresh collection). Torn or bit-rotted
// generations are skipped — they are the unacknowledged tail of a
// crashed commit.
func (e *NRTEngine) loadManifest() *nrtManifest {
	prefix := e.name + ".nrt."
	var gens []uint64
	for _, f := range e.fs.Names() {
		if g, ok := parseGen(f, prefix); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, g := range gens {
		if man := e.readManifest(nrtManName(e.name, g)); man != nil && man.Gen == g {
			return man
		}
	}
	return nil
}

func parseGen(fname, prefix string) (uint64, bool) {
	if !strings.HasPrefix(fname, prefix) {
		return 0, false
	}
	var g uint64
	rest := fname[len(prefix):]
	if rest == "" {
		return 0, false
	}
	for _, c := range rest {
		if c < '0' || c > '9' {
			return 0, false
		}
		g = g*10 + uint64(c-'0')
	}
	return g, true
}

func (e *NRTEngine) readManifest(fname string) *nrtManifest {
	f, err := e.fs.Open(fname)
	if err != nil {
		return nil
	}
	size := f.Size()
	if size < 12 {
		return nil
	}
	hdr := make([]byte, 12)
	if vfs.ReadFull(f, hdr, 0) != nil || string(hdr[:4]) != nrtMagic {
		return nil
	}
	want := binary.LittleEndian.Uint32(hdr[4:8])
	n := int64(binary.LittleEndian.Uint32(hdr[8:12]))
	if 12+n > size {
		return nil
	}
	body := make([]byte, n)
	if vfs.ReadFull(f, body, 12) != nil || crc32.ChecksumIEEE(body) != want {
		return nil
	}
	var man nrtManifest
	if json.Unmarshal(body, &man) != nil {
		return nil
	}
	return &man
}

// writeManifest durably writes a manifest generation: remove any
// leftover of the same name (a prior torn attempt), create, write
// magic+crc+len+json, sync. The sync is the commit point.
func (e *NRTEngine) writeManifest(man *nrtManifest) error {
	body, err := json.Marshal(man)
	if err != nil {
		return err
	}
	fname := nrtManName(e.name, man.Gen)
	if e.fs.Exists(fname) {
		if err := e.fs.Remove(fname); err != nil {
			return err
		}
	}
	f, err := e.fs.Create(fname)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 12+len(body))
	buf = append(buf, nrtMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	if _, err := f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("core: nrt manifest %q: %w", fname, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("core: nrt manifest %q: %w", fname, err)
	}
	return nil
}

// createWAL replaces any leftover log of the same name (torn earlier
// attempt) and creates a fresh one holding the given payloads, synced.
func (e *NRTEngine) createWAL(fname string, payloads [][]byte) (*mneme.WAL, error) {
	if e.fs.Exists(fname) {
		if err := e.fs.Remove(fname); err != nil {
			return nil, err
		}
	}
	w, err := mneme.CreateWAL(e.fs, fname)
	if err != nil {
		return nil, err
	}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			return nil, err
		}
	}
	if err := w.Sync(); err != nil {
		return nil, err
	}
	return w, nil
}

// cleanupOrphans removes every NRT-owned file the chosen manifest does
// not reference: stale manifests and WAL generations, and segment
// files left by a torn flush or compaction. The base collection's own
// files are never touched.
func (e *NRTEngine) cleanupOrphans(man *nrtManifest) {
	keep := make(map[string]bool, len(man.Segments))
	for _, s := range man.Segments {
		keep[s.Name] = true
	}
	walFile := nrtWalName(e.name, man.WalGen)
	manFile := nrtManName(e.name, man.Gen)
	segPrefix := e.name + ".g"
	for _, f := range e.fs.Names() {
		switch {
		case strings.HasPrefix(f, e.name+".wal."):
			if f != walFile {
				_ = e.fs.Remove(f)
			}
		case strings.HasPrefix(f, e.name+".nrt."):
			if f != manFile {
				_ = e.fs.Remove(f)
			}
		case strings.HasPrefix(f, segPrefix):
			if p, ok := segFilePrefix(f, segPrefix); ok && !keep[p] {
				_ = e.fs.Remove(f)
			}
		}
	}
}

// segFilePrefix extracts "<name>.g<seq>" from one of its files
// ("<name>.g<seq>.lex", ".run0", ...). ok=false when fname is not
// shaped like a segment file.
func segFilePrefix(fname, segPrefix string) (string, bool) {
	rest := fname[len(segPrefix):]
	i := 0
	for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
		i++
	}
	if i == 0 || i >= len(rest) || rest[i] != '.' {
		return "", false
	}
	return fname[:len(segPrefix)+i], true
}

// removeFilesWithPrefix removes every file under "<prefix>." — the
// defensive sweep before rebuilding a segment name that a failed or
// crashed earlier attempt may have littered.
func (e *NRTEngine) removeFilesWithPrefix(prefix string) {
	for _, f := range e.fs.Names() {
		if strings.HasPrefix(f, prefix+".") {
			_ = e.fs.Remove(f)
		}
	}
}

// Ingest analyzes and indexes a batch of documents, assigning them
// consecutive global doc IDs starting at the returned value. The batch
// is atomic and durable when Ingest returns nil: every document is in
// the synced WAL and searchable. On error nothing is acknowledged —
// partial WAL frames are rewound (or, if even the rewind fails, the
// engine latches write-broken and refuses further ingests; queries
// continue).
func (e *NRTEngine) Ingest(texts ...string) (uint32, error) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	first := e.docCount
	if len(texts) == 0 {
		return first, nil
	}
	if e.closed {
		return first, errors.New("core: nrt engine closed")
	}
	if e.walBroken {
		return first, errors.New("core: nrt ingest disabled: write-ahead log in unknown state after failed rewind")
	}

	toks := make([][]textproc.Token, len(texts))
	raws := make([][]byte, len(texts))
	var totalToks int64
	for i, text := range texts {
		id := first + uint32(i)
		toks[i] = e.an.Tokens(text)
		totalToks += int64(len(toks[i]))
		buf := make([]byte, 0, binary.MaxVarintLen32+len(text))
		buf = binary.AppendUvarint(buf, uint64(id))
		raws[i] = append(buf, text...)
	}

	mark := e.wal.Mark()
	var werr error
	for _, p := range raws {
		if werr = e.wal.Append(p); werr != nil {
			break
		}
	}
	if werr == nil {
		werr = e.wal.Sync()
	}
	if werr != nil {
		if rerr := e.wal.Rewind(mark); rerr != nil {
			e.walBroken = true
		}
		return first, fmt.Errorf("core: nrt ingest: %w", werr)
	}

	// Durable — publish. Readers capturing the watermark under pubMu
	// see either none or all of this batch's statistics; the memtable's
	// own watermark truncation keeps per-term lists consistent.
	e.pubMu.Lock()
	for i := range texts {
		id := first + uint32(i)
		e.mem.add(id, toks[i])
		e.lens = append(e.lens, uint32(len(toks[i])))
	}
	e.totalToks += totalToks
	e.docCount = first + uint32(len(texts))
	e.pubMu.Unlock()
	e.tailToks = append(e.tailToks, toks...)
	e.tailRaw = append(e.tailRaw, raws...)
	e.ingested += int64(len(texts))
	e.ingDocs.Add(int64(len(texts)))
	e.ingToks.Add(totalToks)
	e.refreshGauges()

	// The batch is acknowledged regardless of what maintenance does
	// next: a failed auto-flush leaves the docs durable in the WAL and
	// the old view intact, counted in flush_errors_total, and the next
	// trigger retries.
	e.maybeFlushLocked()
	return first, nil
}

// maybeFlushLocked applies the size triggers after an ingest batch.
// Best-effort: failures are counted, never surfaced to the ingester.
func (e *NRTEngine) maybeFlushLocked() {
	docs, _, bytes := e.mem.stats()
	trigger := (e.cfg.FlushDocs > 0 && docs >= e.cfg.FlushDocs) ||
		(e.cfg.FlushBytes > 0 && bytes >= e.cfg.FlushBytes)
	if !trigger {
		return
	}
	if err := e.flushLocked(); err != nil {
		e.flushErr.Add(1)
		return
	}
	if e.cfg.CompactSegments > 0 && e.flushedSegs() >= e.cfg.CompactSegments {
		if err := e.compactLocked(); err != nil {
			e.flushErr.Add(1)
		}
	}
}

func (e *NRTEngine) flushedSegs() int {
	n := 0
	for _, s := range e.segs {
		if !s.baseColl {
			n++
		}
	}
	return n
}

// Flush drains the memtable into an immutable segment. Queries run
// concurrently throughout the build and are blocked only for the
// pointer flip at the end. A failed flush leaves the old state fully
// intact — the partial segment files are swept on the next attempt.
func (e *NRTEngine) Flush() error {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if e.closed {
		return errors.New("core: nrt engine closed")
	}
	return e.flushLocked()
}

func (e *NRTEngine) flushLocked() error {
	memDocs := int(e.docCount - e.memBase)
	if memDocs == 0 {
		return nil
	}
	ioBefore := e.fs.Stats()
	seg := nrtSegName(e.name, e.nextSeg)
	e.removeFilesWithPrefix(seg)

	// Replay the retained token streams through the ordinary batch
	// builder; BaseDoc makes the records carry global doc IDs.
	b := index.NewBuilder(e.fs, index.Options{
		Analyzer: e.an,
		Scratch:  seg + ".run",
		BaseDoc:  e.memBase,
	})
	var toksFlushed int64
	for i, toks := range e.tailToks {
		if err := b.AddTokens(e.memBase+uint32(i), toks); err != nil {
			return err
		}
		toksFlushed += int64(len(toks))
	}
	if _, err := finishBuild(e.fs, seg, b, []BackendKind{e.kind}, nil, e.opts.ChunkLargeLists); err != nil {
		return err
	}
	if err := e.syncSegmentFiles(seg); err != nil {
		return err
	}
	eng, err := e.openSegEngine(seg)
	if err != nil {
		return err
	}

	// New (empty) WAL generation, then the manifest commit point.
	newWal, err := e.createWAL(nrtWalName(e.name, e.walGen+1), nil)
	if err != nil {
		_ = eng.Close()
		return err
	}
	man := e.manifestLocked()
	man.Gen++
	man.WalGen++
	man.NextSeg++
	man.Docs = e.docCount
	man.Segments = append(man.Segments, nrtManifestSeg{Name: seg, Base: e.memBase, Docs: uint32(memDocs)})
	if err := e.writeManifest(man); err != nil {
		_ = eng.Close()
		_ = newWal.Close()
		return err
	}

	// Committed. Flip the query view; only this window blocks readers.
	oldWalFile := nrtWalName(e.name, e.walGen)
	oldManFile := nrtManName(e.name, e.gen)
	pauseBefore := e.fs.Stats()
	e.viewMu.Lock()
	e.segs = append(e.segs, &nrtSegment{name: seg, base: e.memBase, docs: uint32(memDocs), eng: eng})
	e.mem = newMemtable()
	e.memBase = e.docCount
	e.viewMu.Unlock()
	pauseIO := e.fs.Stats().Sub(pauseBefore)

	oldWal := e.wal
	e.wal = newWal
	e.gen, e.walGen, e.nextSeg = man.Gen, man.WalGen, man.NextSeg
	e.tailToks, e.tailRaw = nil, nil
	e.walBroken = false
	_ = oldWal.Close()
	_ = e.fs.Remove(oldWalFile)
	_ = e.fs.Remove(oldManFile)

	e.flushes++
	e.flushC.Add(1)
	e.flushLog = append(e.flushLog, FlushStat{
		Docs:    memDocs,
		Toks:    toksFlushed,
		BuildIO: e.fs.Stats().Sub(ioBefore),
		PauseIO: pauseIO,
	})
	e.refreshGauges()
	return nil
}

// syncSegmentFiles makes a freshly built segment durable before the
// manifest references it (the builder's save paths do not sync).
func (e *NRTEngine) syncSegmentFiles(seg string) error {
	suffixes := []string{suffixLexicon, suffixDocMeta}
	if e.kind == BackendBTree {
		suffixes = append(suffixes, suffixBTree)
	} else {
		suffixes = append(suffixes, suffixMneme)
	}
	for _, sfx := range suffixes {
		f, err := e.fs.Open(seg + sfx)
		if err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// manifestLocked reconstructs the current durable manifest from
// in-memory state (callers then mutate and bump Gen).
func (e *NRTEngine) manifestLocked() *nrtManifest {
	man := &nrtManifest{Gen: e.gen, WalGen: e.walGen, NextSeg: e.nextSeg, Docs: e.memBase}
	for _, s := range e.segs {
		man.Segments = append(man.Segments, nrtManifestSeg{Name: s.name, Base: s.base, Docs: s.docs, BaseColl: s.baseColl})
	}
	return man
}

// Compact merges every flushed (non-base) segment into one, re-encoding
// each term's concatenated postings with EncodeAuto — the same
// merge-upgrade path that lifts v1 records into block format once they
// grow past a block. The base collection is left alone. Queries run
// concurrently; the flip at the end retires and closes the inputs.
func (e *NRTEngine) Compact() error {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if e.closed {
		return errors.New("core: nrt engine closed")
	}
	return e.compactLocked()
}

func (e *NRTEngine) compactLocked() error {
	var inputs []*nrtSegment
	for _, s := range e.segs {
		if !s.baseColl {
			inputs = append(inputs, s)
		}
	}
	if len(inputs) < 2 {
		return nil
	}
	merged := nrtSegName(e.name, e.nextSeg)
	e.removeFilesWithPrefix(merged)

	// Term-by-term merge in sorted term order, so interned IDs ascend
	// and the B-tree sink can bulk-load.
	termSet := make(map[string]struct{})
	for _, s := range inputs {
		s.eng.dict.Range(func(en *lexicon.Entry) bool {
			termSet[en.Term] = struct{}{}
			return true
		})
	}
	terms := make([]string, 0, len(termSet))
	for t := range termSet {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	dict := lexicon.New()
	mergeTerm := func(term string) ([]byte, *lexicon.Entry, error) {
		var ps []postings.Posting
		var ctf uint64
		for _, s := range inputs {
			en, ok := s.eng.dict.Lookup(term)
			if !ok {
				continue
			}
			ref, ok := s.eng.refOf(en)
			if !ok {
				continue
			}
			rec, err := s.eng.backend.Fetch(ref)
			if err != nil {
				return nil, nil, err
			}
			if ps, err = postings.AppendAll(ps, rec); err != nil {
				return nil, nil, err
			}
			ctf += en.CTF
		}
		if len(ps) == 0 {
			return nil, nil, nil
		}
		rec, err := postings.EncodeAuto(ps)
		if err != nil {
			return nil, nil, err
		}
		en := dict.Intern(term)
		en.CTF = ctf
		en.DF = uint64(len(ps))
		en.ListBytes = uint32(len(rec))
		return rec, en, nil
	}

	switch e.kind {
	case BackendBTree:
		bt, tree, err := CreateBTreeBackend(e.fs, merged+suffixBTree)
		if err != nil {
			return err
		}
		var inner error
		i := 0
		err = tree.BulkLoad(func() (uint32, []byte, bool) {
			for i < len(terms) {
				rec, en, err := mergeTerm(terms[i])
				i++
				if err != nil {
					inner = err
					return 0, nil, false
				}
				if en != nil {
					return en.ID, rec, true
				}
			}
			return 0, nil, false
		})
		if err == nil {
			err = inner
		}
		if err != nil {
			_ = bt.Close()
			return err
		}
		if err := bt.Close(); err != nil {
			return err
		}
	default:
		cfg := MnemeConfig(BufferPlan{SmallBytes: 1 << 16, MediumBytes: 1 << 20, LargeBytes: 1 << 22})
		mn, err := CreateMnemeBackend(e.fs, merged+suffixMneme, cfg)
		if err != nil {
			return err
		}
		mn.SetChunking(e.opts.ChunkLargeLists)
		for _, term := range terms {
			rec, en, err := mergeTerm(term)
			if err != nil {
				_ = mn.Close()
				return err
			}
			if en == nil {
				continue
			}
			id, err := mn.Store(rec)
			if err != nil {
				_ = mn.Close()
				return err
			}
			en.Ref = id
		}
		if err := mn.Close(); err != nil {
			return err
		}
	}

	var lens []uint32
	var total int64
	for _, s := range inputs {
		lens = append(lens, s.eng.docLens...)
		total += s.eng.total
	}
	if err := saveLexicon(e.fs, merged, dict); err != nil {
		return err
	}
	if err := saveDocMeta(e.fs, merged, lens, total); err != nil {
		return err
	}
	if err := e.syncSegmentFiles(merged); err != nil {
		return err
	}
	eng, err := e.openSegEngine(merged)
	if err != nil {
		return err
	}

	man := e.manifestLocked()
	man.Gen++
	man.NextSeg++
	var kept []nrtManifestSeg
	for _, ms := range man.Segments {
		if ms.BaseColl {
			kept = append(kept, ms)
		}
	}
	man.Segments = append(kept, nrtManifestSeg{Name: merged, Base: inputs[0].base, Docs: uint32(len(lens))})
	if err := e.writeManifest(man); err != nil {
		_ = eng.Close()
		return err
	}

	// Committed — flip, retire inputs, sweep their files.
	oldManFile := nrtManName(e.name, e.gen)
	e.viewMu.Lock()
	var segs []*nrtSegment
	for _, s := range e.segs {
		if s.baseColl {
			segs = append(segs, s)
		}
	}
	segs = append(segs, &nrtSegment{name: merged, base: inputs[0].base, docs: uint32(len(lens)), eng: eng})
	e.segs = segs
	e.viewMu.Unlock()
	e.gen, e.nextSeg = man.Gen, man.NextSeg
	for _, s := range inputs {
		_ = s.eng.Close()
		e.removeFilesWithPrefix(s.name)
	}
	_ = e.fs.Remove(oldManFile)

	e.compacts++
	e.compactC.Add(1)
	e.refreshGauges()
	return nil
}

func (e *NRTEngine) refreshGauges() {
	docs, _, bytes := e.mem.stats()
	e.memDocsG.Set(int64(docs))
	e.memBytsG.Set(bytes)
	e.segsG.Set(int64(len(e.segs)))
}

// Close stops the background trigger, waits out any in-flight flush,
// and closes the WAL and every segment engine. Idempotent.
func (e *NRTEngine) Close() error {
	e.ingestMu.Lock()
	if e.closed {
		e.ingestMu.Unlock()
		return nil
	}
	e.closed = true
	e.ingestMu.Unlock()
	if e.bgStop != nil {
		close(e.bgStop)
		e.bgWG.Wait()
	}
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	var first error
	if e.wal != nil {
		if err := e.wal.Close(); err != nil {
			first = err
		}
		e.wal = nil
	}
	e.viewMu.Lock()
	for _, s := range e.segs {
		if err := s.eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.segs = nil
	e.viewMu.Unlock()
	return first
}

// NumDocs is the searchable document count right now (segments plus
// memtable).
func (e *NRTEngine) NumDocs() int {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	return int(e.docCount)
}

// Analyzer exposes the shared analyzer.
func (e *NRTEngine) Analyzer() *textproc.Analyzer { return e.an }

// Kind reports the backend every segment runs on.
func (e *NRTEngine) Kind() BackendKind { return e.kind }

// Metrics exposes the NRT engine's metrics registry (query metrics
// plus the ingest counters and memtable gauges).
func (e *NRTEngine) Metrics() *obs.Registry { return e.met.reg }

// Counters returns the aggregate work counters across every query this
// engine has served, plus retry recoveries from the segment engines.
func (e *NRTEngine) Counters() Counters {
	c := e.agg.snapshot()
	e.viewMu.RLock()
	for _, s := range e.segs {
		c.RetriedReads += s.eng.Counters().RetriedReads
	}
	e.viewMu.RUnlock()
	return c
}

// FlushStats returns the per-flush cost log (deterministic I/O deltas),
// in flush order.
func (e *NRTEngine) FlushStats() []FlushStat {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	return append([]FlushStat(nil), e.flushLog...)
}

// Health reports serving fitness: an NRT engine keeps serving queries
// even with ingest write-broken, so Serving mirrors the segment
// engines' breaker state (all-open on every segment means nothing can
// be fetched).
func (e *NRTEngine) Health() Health {
	h := Health{Docs: e.NumDocs(), Serving: true}
	e.viewMu.RLock()
	defer e.viewMu.RUnlock()
	if len(e.segs) == 0 {
		return h
	}
	allOut := true
	for _, s := range e.segs {
		sh := s.eng.Health()
		for pool, st := range sh.Breakers {
			if h.Breakers == nil {
				h.Breakers = make(map[string]string)
			}
			h.Breakers[s.name+"/"+pool] = st
		}
		if sh.Serving {
			allOut = false
		}
	}
	if allOut {
		h.Serving = false
	}
	return h
}

// Snapshot captures the engine's aggregate state, including the NRT
// write-path block.
func (e *NRTEngine) Snapshot() Snapshot {
	c := e.Counters()
	buffers := make(map[string]mneme.BufferStats)
	st := &NRTStats{}
	e.viewMu.RLock()
	for _, s := range e.segs {
		for pool, bs := range s.eng.backend.BufferStats() {
			buffers[s.name+"/"+pool] = bs
		}
		st.Segments = append(st.Segments, NRTSegStat{
			Name: s.name, Base: s.base, Docs: s.docs, BaseCollection: s.baseColl,
		})
	}
	e.viewMu.RUnlock()
	e.ingestMu.Lock()
	st.Gen, st.WalGen = e.gen, e.walGen
	if e.wal != nil {
		st.WalEntries = e.wal.Entries()
	}
	st.Ingested = e.ingested
	st.Flushes, st.Compactions = e.flushes, e.compacts
	st.WalTruncFrames, st.WalTruncBytes = e.walTruncFrames, e.walTruncBytes
	e.ingestMu.Unlock()
	memDocs, _, memBytes := e.mem.stats()
	st.MemDocs, st.MemBytes = memDocs, memBytes
	if len(buffers) == 0 {
		buffers = nil
	}
	var cache *CacheStats
	if e.blocks != nil || e.results != nil {
		cache = &CacheStats{}
		if e.blocks != nil {
			e.blocks.stats(cache)
		}
		if e.results != nil {
			cache.ResultHits = e.results.hits.Load()
			cache.ResultMisses = e.results.misses.Load()
			cache.ResultEntries = e.results.entries()
		}
	}
	return Snapshot{
		Backend:        e.kind.String(),
		Counters:       c,
		IO:             e.fs.Stats(),
		Buffers:        buffers,
		CorruptRecords: c.CorruptRecords,
		Metrics:        e.met.reg.Snapshot(),
		NRT:            st,
		Cache:          cache,
	}
}
