package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
)

// batchConfig holds batch-driver settings.
type batchConfig struct {
	parallelism int
	topK        int
	timeout     time.Duration
}

// BatchOption configures SearchBatch.
type BatchOption func(*batchConfig)

// Parallelism sets the number of worker goroutines evaluating queries
// (default 1, the paper's serial protocol). Each worker runs its own
// Searcher over the shared engine.
func Parallelism(n int) BatchOption {
	return func(c *batchConfig) {
		if n > 0 {
			c.parallelism = n
		}
	}
}

// TopK bounds each query's result list (default 0: all documents).
func TopK(k int) BatchOption {
	return func(c *batchConfig) { c.topK = k }
}

// QueryTimeout gives every query in the batch its own deadline. An
// expired query contributes its partial ranking (tagged in the driver's
// per-query outcome, or silently truncated-and-counted for SearchBatch —
// see Counters.DeadlineHits) and the batch moves on.
func QueryTimeout(d time.Duration) BatchOption {
	return func(c *batchConfig) { c.timeout = d }
}

// searchOne evaluates one batch query under the per-query timeout.
func searchOne(ctx context.Context, s *Searcher, query string, cfg *batchConfig) ([]Result, error) {
	resp, err := s.Run(ctx, Request{Query: query, TopK: cfg.topK, Deadline: cfg.timeout})
	return resp.Results, err
}

// resilienceOutcome reports whether an error is a typed per-query
// resilience condition — shed by admission control or cut short by a
// deadline — rather than a hard failure. Typed conditions are expected
// under load and never abort a batch.
func resilienceOutcome(err error) bool {
	return errors.Is(err, resilience.ErrShed) || errors.Is(err, resilience.ErrDeadline)
}

// SearchBatch evaluates queries over the engine and returns per-query
// rankings in query order. With Parallelism(n), n workers pull queries
// from a shared feed, each on its own Searcher; rankings and aggregate
// counters are identical to a serial run. The first hard query error
// stops the feed and is returned alongside the results completed so
// far. Typed resilience outcomes (shed, deadline — possible only under
// WithMaxInFlight or QueryTimeout) are not hard errors: the query's
// partial results are kept, the condition is counted in the engine
// counters, and the batch continues. Use SearchBatchCtx to see those
// conditions per query.
func (e *Engine) SearchBatch(queries []string, opts ...BatchOption) ([][]Result, error) {
	cfg := batchConfig{parallelism: 1}
	for _, o := range opts {
		o(&cfg)
	}
	results := make([][]Result, len(queries))
	if len(queries) == 0 {
		return results, nil
	}
	workers := cfg.parallelism
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers == 1 {
		s := e.Acquire()
		for i, q := range queries {
			r, err := searchOne(nil, s, q, &cfg)
			if err != nil && !resilienceOutcome(err) {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next     atomic.Int64 // shared feed cursor
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.Acquire()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				r, err := searchOne(nil, s, queries[i], &cfg)
				if err != nil && !resilienceOutcome(err) {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	return results, firstErr
}

// BatchOutcome is one query's result from SearchBatchCtx: the ranking
// (possibly partial) and the query's own error. Err chains to
// resilience.ErrShed when admission control rejected the query, to
// resilience.ErrDeadline when it was cut short (Results then holds the
// partial ranking), or carries the hard failure that aborted it.
type BatchOutcome struct {
	Results []Result
	Err     error
}

// SearchBatchCtx evaluates queries like SearchBatch but reports every
// query's individual outcome instead of collapsing to first-error: no
// query error — typed or hard — stops the feed. Only the batch context
// itself ends the run early, in which case the outcomes completed so
// far are returned together with ctx.Err(); unreached queries have nil
// Results and nil Err. The per-query context passed to each evaluation
// derives from ctx, bounded by QueryTimeout when set.
func (e *Engine) SearchBatchCtx(ctx context.Context, queries []string, opts ...BatchOption) ([]BatchOutcome, error) {
	cfg := batchConfig{parallelism: 1}
	for _, o := range opts {
		o(&cfg)
	}
	out := make([]BatchOutcome, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	batchDone := func() bool { return ctx != nil && ctx.Err() != nil }
	workers := cfg.parallelism
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers == 1 {
		s := e.Acquire()
		for i, q := range queries {
			if batchDone() {
				return out, ctx.Err()
			}
			r, err := searchOne(ctx, s, q, &cfg)
			out[i] = BatchOutcome{Results: r, Err: err}
		}
		return out, nil
	}

	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.Acquire()
			for !batchDone() {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				r, err := searchOne(ctx, s, queries[i], &cfg)
				out[i] = BatchOutcome{Results: r, Err: err}
			}
		}()
	}
	wg.Wait()
	if batchDone() {
		return out, ctx.Err()
	}
	return out, nil
}
