package core

import (
	"sync"
	"sync/atomic"
)

// batchConfig holds batch-driver settings.
type batchConfig struct {
	parallelism int
	topK        int
}

// BatchOption configures SearchBatch.
type BatchOption func(*batchConfig)

// Parallelism sets the number of worker goroutines evaluating queries
// (default 1, the paper's serial protocol). Each worker runs its own
// Searcher over the shared engine.
func Parallelism(n int) BatchOption {
	return func(c *batchConfig) {
		if n > 0 {
			c.parallelism = n
		}
	}
}

// TopK bounds each query's result list (default 0: all documents).
func TopK(k int) BatchOption {
	return func(c *batchConfig) { c.topK = k }
}

// SearchBatch evaluates queries over the engine and returns per-query
// rankings in query order. With Parallelism(n), n workers pull queries
// from a shared feed, each on its own Searcher; rankings and aggregate
// counters are identical to a serial run. The first query error stops
// the feed and is returned alongside the results completed so far.
func (e *Engine) SearchBatch(queries []string, opts ...BatchOption) ([][]Result, error) {
	cfg := batchConfig{parallelism: 1}
	for _, o := range opts {
		o(&cfg)
	}
	results := make([][]Result, len(queries))
	if len(queries) == 0 {
		return results, nil
	}
	workers := cfg.parallelism
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers == 1 {
		s := e.Acquire()
		for i, q := range queries {
			r, err := s.Search(q, cfg.topK)
			if err != nil {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next     atomic.Int64 // shared feed cursor
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.Acquire()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				r, err := s.Search(queries[i], cfg.topK)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	return results, firstErr
}
