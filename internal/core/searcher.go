package core

import (
	"context"
	"errors"
	"io"
	"sync"

	"repro/internal/btree"
	"repro/internal/inference"
	"repro/internal/lexicon"
	"repro/internal/mneme"
	"repro/internal/obs"
	"repro/internal/postings"
	"repro/internal/resilience"
	"repro/internal/vfs"
)

// Searcher is one query stream's view of a shared Engine. It owns all
// per-query mutable state — work counters, the access log and term-use
// deltas, and (through the backend Pin) reservation pins — so any
// number of searchers can evaluate queries over the same engine
// concurrently. A searcher itself is not safe for concurrent use; use
// one per goroutine.
//
// The searcher's Counters cover everything it has evaluated. At the end
// of every Search / SearchDAAT / Explain call the delta since the last
// flush is merged into the engine's atomic aggregates, so the engine
// totals reconcile exactly with a serial run regardless of interleaving.
type Searcher struct {
	e        *Engine
	counters Counters // cumulative work of this searcher
	flushed  Counters // portion already merged into the engine

	// opLog and opTerms buffer the unflushed access-log and term-use
	// deltas, so the engine lock is taken once per query, not per lookup.
	opLog   []uint32
	opTerms map[string]int64

	// iters tracks the iterators the in-flight query opened, so their
	// skip statistics (postings/blocks/chunks never touched) can be
	// settled into the counters when evaluation ends.
	iters []*countingIterator

	// pooled tracks decoded-posting scratch buffers borrowed from
	// postingBufPool for the in-flight query; flush returns them.
	pooled []*[]postings.Posting

	// rec, when non-nil, receives lexicon and fetch spans and lookup
	// events for every record access. Nil during ordinary searches: the
	// only per-access cost of the tracing facility is this nil check.
	rec obs.Recorder

	// ctx is the in-flight query's context, set only for the duration
	// of a Run call whose context can actually expire (ctx.Done() !=
	// nil) — a plain Search pays one nil check per boundary and
	// nothing more. deadlined latches the first observed expiry so
	// DeadlineHits counts queries, not checks.
	ctx       context.Context
	deadlined bool

	// reqDegraded and reqPrune are the in-flight Request's per-query
	// overrides of the engine-level WithDegraded / WithPruning
	// options, set only for the duration of a Run call.
	reqDegraded bool
	reqPrune    bool
}

// SetRecorder attaches (nil detaches) a trace recorder to this searcher.
func (s *Searcher) SetRecorder(r obs.Recorder) { s.rec = r }

// ObsRecorder implements obs.Traced, letting the inference evaluators
// discover the recorder through the Source they are handed.
func (s *Searcher) ObsRecorder() obs.Recorder { return s.rec }

// Acquire returns a new searcher over the engine.
func (e *Engine) Acquire() *Searcher { return &Searcher{e: e} }

// Engine returns the shared engine this searcher evaluates against.
func (s *Searcher) Engine() *Engine { return s.e }

// Counters returns the work this searcher has performed.
func (s *Searcher) Counters() Counters { return s.counters }

// postingBufPool recycles the backing arrays of decoded posting slices
// across queries on the materializing (TAAT / DecodeAll) path. Only the
// []Posting array is pooled; Positions slices are fresh per decode, so
// evaluators may retain them. Elements are cleared before return so a
// pooled array pins no Positions memory.
var postingBufPool = sync.Pool{
	New: func() any {
		b := make([]postings.Posting, 0, 256)
		return &b
	},
}

// finishIters settles skip statistics from every iterator the query
// opened. Runs after evaluation, before the counter flush.
func (s *Searcher) finishIters() {
	for _, ci := range s.iters {
		ci.finish()
	}
	s.iters = s.iters[:0]
}

// flush merges the searcher's unmerged work into the engine.
func (s *Searcher) flush() {
	for _, bp := range s.pooled {
		b := *bp
		for i := range b {
			b[i] = postings.Posting{}
		}
		*bp = b[:0]
		postingBufPool.Put(bp)
	}
	s.pooled = s.pooled[:0]
	e := s.e
	d := s.counters.Sub(s.flushed)
	e.agg.add(d)
	e.met.observeQuery(d)
	s.flushed = s.counters
	if len(s.opLog) == 0 && len(s.opTerms) == 0 {
		return
	}
	e.mu.Lock()
	e.accessLog = append(e.accessLog, s.opLog...)
	if e.termUse != nil {
		for t, n := range s.opTerms {
			e.termUse[t] += n
		}
	}
	e.mu.Unlock()
	s.opLog = nil
	s.opTerms = nil
}

// Search evaluates a query with term-at-a-time processing and returns
// the topK documents (topK <= 0 means all).
//
// Deprecated: use Run.
func (s *Searcher) Search(query string, topK int) ([]Result, error) {
	resp, err := s.Run(nil, Request{Query: query, TopK: topK})
	return resp.Results, err
}

// SearchDAAT evaluates a query document-at-a-time.
//
// Deprecated: use Run with Mode: ModeDAAT.
func (s *Searcher) SearchDAAT(query string, topK int) ([]Result, error) {
	resp, err := s.Run(nil, Request{Query: query, TopK: topK, Mode: ModeDAAT})
	return resp.Results, err
}

// SearchCtx evaluates a query under a context; see Run for the full
// shed/deadline contract. A nil or never-expiring ctx behaves exactly
// like Search.
//
// Deprecated: use Run.
func (s *Searcher) SearchCtx(ctx context.Context, query string, topK int) ([]Result, error) {
	resp, err := s.Run(ctx, Request{Query: query, TopK: topK})
	return resp.Results, err
}

// SearchDAATCtx is SearchCtx with document-at-a-time evaluation.
//
// Deprecated: use Run with Mode: ModeDAAT.
func (s *Searcher) SearchDAATCtx(ctx context.Context, query string, topK int) ([]Result, error) {
	resp, err := s.Run(ctx, Request{Query: query, TopK: topK, Mode: ModeDAAT})
	return resp.Results, err
}

// expired reports whether the in-flight query's context has expired,
// latching the first hit into Counters.DeadlineHits. Queries without a
// cancellable context pay exactly this nil check.
func (s *Searcher) expired() bool {
	if s.ctx == nil {
		return false
	}
	if s.deadlined {
		return true
	}
	if s.ctx.Err() != nil {
		s.deadlined = true
		s.counters.DeadlineHits++
		return true
	}
	return false
}

// Explain returns the belief breakdown a query assigns to one document.
func (s *Searcher) Explain(query string, doc uint32) (*inference.Explanation, error) {
	n, err := s.e.normalizeQuery(query)
	if err != nil {
		return nil, err
	}
	if n == nil {
		return &inference.Explanation{Op: "(all terms stopped)", Belief: 0}, nil
	}
	defer s.flush()
	defer s.finishIters()
	return inference.Explain(n, s, doc)
}

// countLookup maintains the counters the experiments report for one
// inverted-list record lookup of the given encoded size.
func (s *Searcher) countLookup(term string, size uint32) {
	s.counters.Lookups++
	s.counters.BytesFetched += int64(size)
	s.e.met.fetchBytes.Observe(int64(size))
	if s.e.opts.LogAccesses {
		s.opLog = append(s.opLog, size)
	}
	if s.e.opts.TrackTermUse {
		if s.opTerms == nil {
			s.opTerms = make(map[string]int64)
		}
		s.opTerms[term]++
	}
}

// isCorruption reports whether an error is a storage-integrity failure
// (checksum mismatch, injected or short I/O, undecodable record) rather
// than a usage error — the class a degraded search may survive.
func isCorruption(err error) bool {
	return errors.Is(err, mneme.ErrCorrupt) ||
		errors.Is(err, btree.ErrCorrupt) ||
		errors.Is(err, postings.ErrCorrupt) ||
		errors.Is(err, vfs.ErrInjected) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// degrade decides whether a failed record fetch is survivable: under
// WithDegraded (or a Request with Degraded set), a corruption-class
// error — or a fast-fail rejection from an open circuit breaker, which
// shields the rest of the query from a failing pool — is counted in
// CorruptRecords and the term is scored as absent; any other error (or
// a strict engine) aborts the query.
func (s *Searcher) degrade(err error) bool {
	if !s.e.opts.DegradedOK && !s.reqDegraded {
		return false
	}
	if !isCorruption(err) && !errors.Is(err, resilience.ErrBreakerOpen) {
		return false
	}
	s.counters.CorruptRecords++
	return true
}

// lookupRef resolves a term through the hash dictionary to a backend
// record ref, bracketed by a lexicon span when tracing.
func (s *Searcher) lookupRef(term string) (uint64, *lexicon.Entry, bool) {
	e := s.e
	if s.rec != nil {
		s.rec.BeginSpan(obs.StageLexicon, term)
	}
	var ref uint64
	entry, ok := e.dict.Lookup(term)
	if ok {
		ref, ok = e.refOf(entry)
	}
	if s.rec != nil {
		if ok {
			s.rec.Event(obs.EvLookup, term, 1)
		}
		s.rec.EndSpan()
	}
	return ref, entry, ok
}

// fetchRecord performs one inverted-list record lookup through the
// backend. A query whose context has expired fetches nothing more:
// the term reads as absent and the deadline is reported at query end.
func (s *Searcher) fetchRecord(term string) ([]byte, bool, error) {
	if s.expired() {
		return nil, false, nil
	}
	ref, _, ok := s.lookupRef(term)
	if !ok {
		return nil, false, nil
	}
	return s.fetchRef(term, ref)
}

// fetchRef is fetchRecord after ref resolution: the traced backend
// fetch, degraded-mode error handling, and lookup accounting.
func (s *Searcher) fetchRef(term string, ref uint64) ([]byte, bool, error) {
	if s.rec != nil {
		s.rec.BeginSpan(obs.StageFetch, term)
	}
	rec, err := s.e.backend.Fetch(ref)
	if s.rec != nil {
		s.rec.EndSpan()
	}
	if err != nil {
		if s.degrade(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	s.countLookup(term, uint32(len(rec)))
	return rec, true, nil
}

// Postings implements inference.Source. The decoded slice's backing
// array is borrowed from postingBufPool and reclaimed when the query
// flushes; callers (the TAAT evaluator, Explain) must not retain it
// past evaluation. Positions slices are fresh allocations and safe to
// keep. On an engine with a block cache the slice may instead be a
// shared cached decode, which callers must treat as read-only — the
// same contract, since retaining was already forbidden.
func (s *Searcher) Postings(term string) ([]postings.Posting, bool, error) {
	if bc := s.e.blocks; bc != nil {
		return s.cachedPostings(bc, term)
	}
	rec, ok, err := s.fetchRecord(term)
	if err != nil || !ok {
		return nil, false, err
	}
	bufp := postingBufPool.Get().(*[]postings.Posting)
	ps, err := postings.AppendAll((*bufp)[:0], rec)
	*bufp = ps // full length: flush clears the elements before pooling
	s.pooled = append(s.pooled, bufp)
	if err != nil {
		if s.degrade(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	s.counters.Postings += int64(len(ps))
	return ps, true, nil
}

// cachedPostings is the TAAT materializing path over the block cache:
// the whole decoded record is cached under a pseudo block index, so a
// repeated term skips the backend fetch and the decode. Cache fills
// decode into fresh (unpooled) allocations — cached slices are shared
// across queries and must never be recycled.
func (s *Searcher) cachedPostings(bc *blockCache, term string) ([]postings.Posting, bool, error) {
	if s.expired() {
		return nil, false, nil
	}
	ref, _, ok := s.lookupRef(term)
	if !ok {
		return nil, false, nil
	}
	key := blockKey{gen: s.e.gen.Load(), ref: ref, blk: wholeRecordBlk}
	if ps, ok := bc.get(key); ok {
		s.counters.BlockCacheHits++
		s.counters.Postings += int64(len(ps))
		return ps, true, nil
	}
	s.counters.BlockCacheMisses++
	rec, ok, err := s.fetchRef(term, ref)
	if err != nil || !ok {
		return nil, false, err
	}
	ps, err := postings.DecodeAll(rec)
	if err != nil {
		if s.degrade(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	s.counters.Postings += int64(len(ps))
	bc.put(key, ps)
	return ps, true, nil
}

// Iterator implements inference.StreamSource. Chunked records (see
// WithChunking) are decoded as they stream off their chunk storage
// instead of being materialized first: indexed chunked records get
// random access, so a block-format (v2) record iterated with Advance
// faults in only the chunks holding blocks it actually decodes; linked
// chunked records stream sequentially, one chunk's segment buffered at
// a time. Whole records dispatch on their encoding version.
func (s *Searcher) Iterator(term string) (inference.PostingIterator, bool, error) {
	e := s.e
	if s.expired() {
		return nil, false, nil
	}
	ref, entry, ok := s.lookupRef(term)
	if !ok {
		return nil, false, nil
	}
	if rr, ranges := e.backend.(RecordRanger); ranges {
		cr, ok, err := rr.RangeRecord(ref)
		if err != nil {
			if s.degrade(err) {
				return nil, false, nil
			}
			return nil, false, err
		}
		if ok {
			s.countLookup(term, entry.ListBytes)
			return s.track(s.attachBlockCache(s.rangeIterator(cr), ref)), true, nil
		}
	}
	if rs, streams := e.backend.(RecordStreamer); streams {
		if r, ok := rs.StreamRecord(ref); ok {
			s.countLookup(term, entry.ListBytes)
			return s.track(&countingIterator{it: postings.NewStreamReader(r), s: s, rec: s.rec}), true, nil
		}
	}
	if s.rec != nil {
		s.rec.BeginSpan(obs.StageFetch, term)
	}
	rec, err := e.backend.Fetch(ref)
	if s.rec != nil {
		s.rec.EndSpan()
	}
	if err != nil {
		if s.degrade(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	s.countLookup(term, uint32(len(rec)))
	ci := &countingIterator{it: postings.Iter(rec), s: s, rec: s.rec}
	return s.track(s.attachBlockCache(ci, ref)), true, nil
}

// track registers an iterator for end-of-query skip accounting.
func (s *Searcher) track(ci *countingIterator) *countingIterator {
	s.iters = append(s.iters, ci)
	return ci
}

// attachBlockCache points a skip-capable reader at the engine's decoded
// block cache (when one is configured): v2 readers cache per block body,
// v3 bitmap readers cache the whole decoded record. Stream (v1) readers
// have no block structure and are left alone.
func (s *Searcher) attachBlockCache(ci *countingIterator, ref uint64) *countingIterator {
	bc := s.e.blocks
	if bc == nil {
		return ci
	}
	view := &blockCacheView{c: bc, s: s, gen: s.e.gen.Load(), ref: ref}
	switch it := ci.it.(type) {
	case *postings.BlockReader:
		it.SetBlockCache(view)
	case *postings.BitmapReader:
		it.SetBlockCache(view)
	}
	return ci
}

// rangeIterator builds the iterator over an indexed chunked record: a
// skip-capable BlockReader or BitmapReader when the record is versioned,
// otherwise a sequential stream decoder fed chunk by chunk. The version
// is decided by peeking the record's first bytes — one chunk fault,
// which the sequential path would pay anyway and the versioned paths
// re-read as part of their headers.
func (s *Searcher) rangeIterator(cr *mneme.ChunkRange) *countingIterator {
	if cr.Size() > 2 {
		if magic, err := cr.ReadRange(0, 3); err == nil {
			if postings.IsV2(magic) {
				return &countingIterator{it: postings.NewBlockRangeReader(chunkRangeSource{cr}), s: s, rec: s.rec, cr: cr}
			}
			if postings.IsV3(magic) {
				return &countingIterator{it: postings.NewBitmapRangeReader(chunkRangeSource{cr}), s: s, rec: s.rec, cr: cr}
			}
		}
	}
	return &countingIterator{it: postings.NewStreamReader(&chunkRangeReader{cr: cr}), s: s, rec: s.rec, cr: cr}
}

// chunkRangeSource adapts mneme.ChunkRange to postings.RangeSource.
type chunkRangeSource struct{ cr *mneme.ChunkRange }

func (c chunkRangeSource) ReadRange(off, n int) ([]byte, error) { return c.cr.ReadRange(off, n) }
func (c chunkRangeSource) Size() int                            { return c.cr.Size() }

// chunkRangeReader adapts a ChunkRange to io.Reader for sequential
// consumption of v1-encoded payloads.
type chunkRangeReader struct {
	cr  *mneme.ChunkRange
	off int
}

func (r *chunkRangeReader) Read(p []byte) (int, error) {
	n := min(len(p), r.cr.Size()-r.off)
	if n <= 0 {
		return 0, io.EOF
	}
	b, err := r.cr.ReadRange(r.off, n)
	if err != nil {
		return 0, err
	}
	copy(p, b)
	r.off += n
	return n, nil
}

// NumDocs implements inference.Source.
func (s *Searcher) NumDocs() int { return s.e.NumDocs() }

// DocLen implements inference.Source.
func (s *Searcher) DocLen(doc uint32) int { return s.e.DocLen(doc) }

// AvgDocLen implements inference.Source.
func (s *Searcher) AvgDocLen() float64 { return s.e.AvgDocLen() }

// TermDF implements inference.DFSource on shard engines: it reports the
// collection-global document frequency for a term so shard-local belief
// scores match the unsharded build's. The DF table is keyed by
// normalized (lexicon) terms, which is what the evaluators pass here.
// ok=false (always, on unsharded engines) tells the evaluator to use
// the local list length.
func (s *Searcher) TermDF(term string) (uint64, bool) {
	g := s.e.opts.Global
	if g == nil {
		return 0, false
	}
	df, ok := g.DF[term]
	return df, ok
}

// recordIterator is the shape shared by the in-memory and streaming
// posting decoders.
type recordIterator interface {
	Next() (postings.Posting, bool)
	DF() uint64
	Err() error
}

// deadlineCheckEvery is how many streamed postings pass between context
// checks inside a countingIterator — frequent enough to cut a huge list
// off promptly, rare enough to cost nothing measurable per posting.
const deadlineCheckEvery = 256

// countingIterator counts postings into the owning searcher's counters
// as they stream past. The evaluators fully consume iterators before
// returning, so the counts land before the query's flush. When tracing,
// each posting also lands as an event on the innermost open span (the
// DAAT score span during evaluation). Every deadlineCheckEvery postings
// the owning query's context is checked, so an expired query stops
// mid-list instead of draining a multi-megabyte stream.
type countingIterator struct {
	it   recordIterator
	s    *Searcher
	rec  obs.Recorder
	n    int64             // postings streamed, for the periodic deadline check
	cr   *mneme.ChunkRange // chunked storage behind it, for skip accounting
	done bool
}

func (ci *countingIterator) Next() (postings.Posting, bool) {
	ci.n++
	if ci.n%deadlineCheckEvery == 0 && ci.s.expired() {
		return postings.Posting{}, false
	}
	p, ok := ci.it.Next()
	if ok {
		ci.s.counters.Postings++
		if ci.rec != nil {
			ci.rec.Event(obs.EvPostings, "", 1)
		}
	}
	return p, ok
}

func (ci *countingIterator) DF() uint64 { return ci.it.DF() }
func (ci *countingIterator) Err() error { return ci.it.Err() }

// Advance implements inference.AdvancingIterator: block readers skip
// whole blocks (and, through chunked storage, whole chunks); sequential
// decoders fall back to a linear scan, which still counts every decoded
// posting.
func (ci *countingIterator) Advance(target uint32) (postings.Posting, bool) {
	adv, ok := ci.it.(interface {
		Advance(uint32) (postings.Posting, bool)
	})
	if !ok {
		for {
			p, ok := ci.Next()
			if !ok || p.Doc >= target {
				return p, ok
			}
		}
	}
	ci.n++
	if ci.n%deadlineCheckEvery == 0 && ci.s.expired() {
		return postings.Posting{}, false
	}
	p, found := adv.Advance(target)
	if found {
		ci.s.counters.Postings++
		if ci.rec != nil {
			ci.rec.Event(obs.EvPostings, "", 1)
		}
	}
	return p, found
}

// MaxTF implements inference.BoundedIterator when the underlying record
// format carries a maximum term frequency (v2 block descriptors, v3
// bitmap header).
func (ci *countingIterator) MaxTF() (uint32, bool) {
	switch it := ci.it.(type) {
	case *postings.BlockReader:
		return it.MaxTF(), true
	case *postings.BitmapReader:
		return it.MaxTF(), true
	}
	return 0, false
}

// finish settles the iterator's skip statistics into the searcher's
// counters: postings and blocks an Advance jumped past, and storage
// chunks never faulted in. Idempotent.
func (ci *countingIterator) finish() {
	if ci.done {
		return
	}
	ci.done = true
	switch it := ci.it.(type) {
	case *postings.BlockReader:
		st := it.FinishStats()
		ci.s.counters.PostingsSkipped += int64(st.Postings)
		ci.s.counters.BlocksSkipped += int64(st.Blocks)
	case *postings.BitmapReader:
		st := it.FinishStats()
		ci.s.counters.PostingsSkipped += int64(st.Postings)
		ci.s.counters.BlocksSkipped += int64(st.Blocks)
	}
	if ci.cr != nil {
		ci.s.counters.ChunksSkipped += int64(ci.cr.Chunks() - ci.cr.Faulted())
	}
}
