package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/btree"
	"repro/internal/inference"
	"repro/internal/lexicon"
	"repro/internal/mneme"
	"repro/internal/obs"
	"repro/internal/postings"
	"repro/internal/resilience"
	"repro/internal/vfs"
)

// Searcher is one query stream's view of a shared Engine. It owns all
// per-query mutable state — work counters, the access log and term-use
// deltas, and (through the backend Pin) reservation pins — so any
// number of searchers can evaluate queries over the same engine
// concurrently. A searcher itself is not safe for concurrent use; use
// one per goroutine.
//
// The searcher's Counters cover everything it has evaluated. At the end
// of every Search / SearchDAAT / Explain call the delta since the last
// flush is merged into the engine's atomic aggregates, so the engine
// totals reconcile exactly with a serial run regardless of interleaving.
type Searcher struct {
	e        *Engine
	counters Counters // cumulative work of this searcher
	flushed  Counters // portion already merged into the engine

	// opLog and opTerms buffer the unflushed access-log and term-use
	// deltas, so the engine lock is taken once per query, not per lookup.
	opLog   []uint32
	opTerms map[string]int64

	// rec, when non-nil, receives lexicon and fetch spans and lookup
	// events for every record access. Nil during ordinary searches: the
	// only per-access cost of the tracing facility is this nil check.
	rec obs.Recorder

	// ctx is the in-flight query's context, set only for the duration
	// of a SearchCtx/SearchDAATCtx call whose context can actually
	// expire (ctx.Done() != nil) — plain Search pays one nil check per
	// boundary and nothing more. deadlined latches the first observed
	// expiry so DeadlineHits counts queries, not checks.
	ctx       context.Context
	deadlined bool
}

// SetRecorder attaches (nil detaches) a trace recorder to this searcher.
func (s *Searcher) SetRecorder(r obs.Recorder) { s.rec = r }

// ObsRecorder implements obs.Traced, letting the inference evaluators
// discover the recorder through the Source they are handed.
func (s *Searcher) ObsRecorder() obs.Recorder { return s.rec }

// Acquire returns a new searcher over the engine.
func (e *Engine) Acquire() *Searcher { return &Searcher{e: e} }

// Engine returns the shared engine this searcher evaluates against.
func (s *Searcher) Engine() *Engine { return s.e }

// Counters returns the work this searcher has performed.
func (s *Searcher) Counters() Counters { return s.counters }

// flush merges the searcher's unmerged work into the engine.
func (s *Searcher) flush() {
	e := s.e
	d := s.counters.Sub(s.flushed)
	e.agg.add(d)
	e.met.observeQuery(d)
	s.flushed = s.counters
	if len(s.opLog) == 0 && len(s.opTerms) == 0 {
		return
	}
	e.mu.Lock()
	e.accessLog = append(e.accessLog, s.opLog...)
	if e.termUse != nil {
		for t, n := range s.opTerms {
			e.termUse[t] += n
		}
	}
	e.mu.Unlock()
	s.opLog = nil
	s.opTerms = nil
}

// Search evaluates a query with term-at-a-time processing and returns
// the topK documents (topK <= 0 means all).
func (s *Searcher) Search(query string, topK int) ([]Result, error) {
	return s.SearchCtx(nil, query, topK)
}

// SearchDAAT evaluates a query document-at-a-time.
func (s *Searcher) SearchDAAT(query string, topK int) ([]Result, error) {
	return s.SearchDAATCtx(nil, query, topK)
}

// SearchCtx evaluates a query under a context. The contract:
//
//   - If the engine has an admission gate (WithMaxInFlight) and the
//     query is shed, the error chains to resilience.ErrShed and no
//     evaluation happens (Counters.Shed, not Queries).
//   - If ctx expires mid-query, evaluation stops at the next boundary
//     (record fault-in, or every posting batch while streaming), the
//     terms not yet scored are treated as absent, and the partial
//     ranking is returned together with an error chaining to both
//     resilience.ErrDeadline and ctx.Err() — a cut-short query is
//     always labelled, never passed off as a complete ranking.
//   - A nil or never-expiring ctx behaves exactly like Search.
func (s *Searcher) SearchCtx(ctx context.Context, query string, topK int) ([]Result, error) {
	return s.searchCtx(ctx, query, topK, evalTAAT)
}

// SearchDAATCtx is SearchCtx with document-at-a-time evaluation.
func (s *Searcher) SearchDAATCtx(ctx context.Context, query string, topK int) ([]Result, error) {
	return s.searchCtx(ctx, query, topK, evalDAAT)
}

// evalTAAT and evalDAAT adapt the two evaluators (whose source
// parameter types differ) to one callback shape for searchCtx.
func evalTAAT(n *inference.Node, s *Searcher, topK int) ([]Result, error) {
	return inference.EvaluateTAAT(n, s, topK)
}

func evalDAAT(n *inference.Node, s *Searcher, topK int) ([]Result, error) {
	return inference.EvaluateDAAT(n, s, topK)
}

func (s *Searcher) searchCtx(ctx context.Context, query string, topK int,
	eval func(*inference.Node, *Searcher, int) ([]Result, error)) ([]Result, error) {
	if g := s.e.gate; g != nil {
		if err := g.Acquire(ctx); err != nil {
			if errors.Is(err, resilience.ErrShed) {
				s.counters.Shed++
			} else {
				s.counters.DeadlineHits++
			}
			s.flush()
			return nil, fmt.Errorf("core: query not admitted: %w", err)
		}
		defer g.Release()
	}
	s.deadlined = false
	if ctx != nil && ctx.Done() != nil {
		s.ctx = ctx
		defer func() { s.ctx = nil }()
	}
	n, err := s.e.normalizeQuery(query)
	if err != nil {
		return nil, err
	}
	s.counters.Queries++
	defer s.flush()
	if n == nil {
		return nil, nil
	}
	pin := s.e.reserve(n)
	defer pin.Release()
	res, err := eval(n, s, topK)
	if err == nil && s.deadlined {
		err = fmt.Errorf("core: query cut short: %w (%w)", resilience.ErrDeadline, s.ctx.Err())
	}
	return res, err
}

// expired reports whether the in-flight query's context has expired,
// latching the first hit into Counters.DeadlineHits. Queries without a
// cancellable context pay exactly this nil check.
func (s *Searcher) expired() bool {
	if s.ctx == nil {
		return false
	}
	if s.deadlined {
		return true
	}
	if s.ctx.Err() != nil {
		s.deadlined = true
		s.counters.DeadlineHits++
		return true
	}
	return false
}

// Explain returns the belief breakdown a query assigns to one document.
func (s *Searcher) Explain(query string, doc uint32) (*inference.Explanation, error) {
	n, err := s.e.normalizeQuery(query)
	if err != nil {
		return nil, err
	}
	if n == nil {
		return &inference.Explanation{Op: "(all terms stopped)", Belief: 0}, nil
	}
	defer s.flush()
	return inference.Explain(n, s, doc)
}

// countLookup maintains the counters the experiments report for one
// inverted-list record lookup of the given encoded size.
func (s *Searcher) countLookup(term string, size uint32) {
	s.counters.Lookups++
	s.counters.BytesFetched += int64(size)
	s.e.met.fetchBytes.Observe(int64(size))
	if s.e.opts.LogAccesses {
		s.opLog = append(s.opLog, size)
	}
	if s.e.opts.TrackTermUse {
		if s.opTerms == nil {
			s.opTerms = make(map[string]int64)
		}
		s.opTerms[term]++
	}
}

// isCorruption reports whether an error is a storage-integrity failure
// (checksum mismatch, injected or short I/O, undecodable record) rather
// than a usage error — the class a degraded search may survive.
func isCorruption(err error) bool {
	return errors.Is(err, mneme.ErrCorrupt) ||
		errors.Is(err, btree.ErrCorrupt) ||
		errors.Is(err, postings.ErrCorrupt) ||
		errors.Is(err, vfs.ErrInjected) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// degrade decides whether a failed record fetch is survivable: under
// WithDegraded, a corruption-class error — or a fast-fail rejection
// from an open circuit breaker, which shields the rest of the query
// from a failing pool — is counted in CorruptRecords and the term is
// scored as absent; any other error (or a strict engine) aborts the
// query.
func (s *Searcher) degrade(err error) bool {
	if !s.e.opts.DegradedOK {
		return false
	}
	if !isCorruption(err) && !errors.Is(err, resilience.ErrBreakerOpen) {
		return false
	}
	s.counters.CorruptRecords++
	return true
}

// lookupRef resolves a term through the hash dictionary to a backend
// record ref, bracketed by a lexicon span when tracing.
func (s *Searcher) lookupRef(term string) (uint64, *lexicon.Entry, bool) {
	e := s.e
	if s.rec != nil {
		s.rec.BeginSpan(obs.StageLexicon, term)
	}
	var ref uint64
	entry, ok := e.dict.Lookup(term)
	if ok {
		ref, ok = e.refOf(entry)
	}
	if s.rec != nil {
		if ok {
			s.rec.Event(obs.EvLookup, term, 1)
		}
		s.rec.EndSpan()
	}
	return ref, entry, ok
}

// fetchRecord performs one inverted-list record lookup through the
// backend. A query whose context has expired fetches nothing more:
// the term reads as absent and the deadline is reported at query end.
func (s *Searcher) fetchRecord(term string) ([]byte, bool, error) {
	if s.expired() {
		return nil, false, nil
	}
	ref, _, ok := s.lookupRef(term)
	if !ok {
		return nil, false, nil
	}
	if s.rec != nil {
		s.rec.BeginSpan(obs.StageFetch, term)
	}
	rec, err := s.e.backend.Fetch(ref)
	if s.rec != nil {
		s.rec.EndSpan()
	}
	if err != nil {
		if s.degrade(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	s.countLookup(term, uint32(len(rec)))
	return rec, true, nil
}

// Postings implements inference.Source.
func (s *Searcher) Postings(term string) ([]postings.Posting, bool, error) {
	rec, ok, err := s.fetchRecord(term)
	if err != nil || !ok {
		return nil, false, err
	}
	ps, err := postings.DecodeAll(rec)
	if err != nil {
		if s.degrade(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	s.counters.Postings += int64(len(ps))
	return ps, true, nil
}

// Iterator implements inference.StreamSource. Chunked records (see
// WithChunking) are decoded as they stream off their chunk list instead
// of being materialized first.
func (s *Searcher) Iterator(term string) (inference.PostingIterator, bool, error) {
	e := s.e
	if s.expired() {
		return nil, false, nil
	}
	ref, entry, ok := s.lookupRef(term)
	if !ok {
		return nil, false, nil
	}
	if rs, streams := e.backend.(RecordStreamer); streams {
		if r, ok := rs.StreamRecord(ref); ok {
			s.countLookup(term, entry.ListBytes)
			return &countingIterator{it: postings.NewStreamReader(r), s: s, rec: s.rec}, true, nil
		}
	}
	if s.rec != nil {
		s.rec.BeginSpan(obs.StageFetch, term)
	}
	rec, err := e.backend.Fetch(ref)
	if s.rec != nil {
		s.rec.EndSpan()
	}
	if err != nil {
		if s.degrade(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	s.countLookup(term, uint32(len(rec)))
	return &countingIterator{it: postings.NewReader(rec), s: s, rec: s.rec}, true, nil
}

// NumDocs implements inference.Source.
func (s *Searcher) NumDocs() int { return s.e.NumDocs() }

// DocLen implements inference.Source.
func (s *Searcher) DocLen(doc uint32) int { return s.e.DocLen(doc) }

// AvgDocLen implements inference.Source.
func (s *Searcher) AvgDocLen() float64 { return s.e.AvgDocLen() }

// recordIterator is the shape shared by the in-memory and streaming
// posting decoders.
type recordIterator interface {
	Next() (postings.Posting, bool)
	DF() uint64
	Err() error
}

// deadlineCheckEvery is how many streamed postings pass between context
// checks inside a countingIterator — frequent enough to cut a huge list
// off promptly, rare enough to cost nothing measurable per posting.
const deadlineCheckEvery = 256

// countingIterator counts postings into the owning searcher's counters
// as they stream past. The evaluators fully consume iterators before
// returning, so the counts land before the query's flush. When tracing,
// each posting also lands as an event on the innermost open span (the
// DAAT score span during evaluation). Every deadlineCheckEvery postings
// the owning query's context is checked, so an expired query stops
// mid-list instead of draining a multi-megabyte stream.
type countingIterator struct {
	it  recordIterator
	s   *Searcher
	rec obs.Recorder
	n   int64 // postings streamed, for the periodic deadline check
}

func (ci *countingIterator) Next() (postings.Posting, bool) {
	ci.n++
	if ci.n%deadlineCheckEvery == 0 && ci.s.expired() {
		return postings.Posting{}, false
	}
	p, ok := ci.it.Next()
	if ok {
		ci.s.counters.Postings++
		if ci.rec != nil {
			ci.rec.Event(obs.EvPostings, "", 1)
		}
	}
	return p, ok
}

func (ci *countingIterator) DF() uint64 { return ci.it.DF() }
func (ci *countingIterator) Err() error { return ci.it.Err() }
