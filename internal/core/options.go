package core

import "repro/internal/textproc"

// EngineOptions configures an opened engine.
//
// Deprecated: pass functional options (WithPlan, WithAnalyzer, ...) to
// Open instead; a literal EngineOptions can be applied with WithOptions
// during migration.
type EngineOptions struct {
	// Analyzer must match the one used at build time; nil selects the
	// default.
	Analyzer *textproc.Analyzer
	// Plan sets Mneme buffer capacities (ignored for the B-tree). The
	// zero plan is "Mneme, No Cache".
	Plan BufferPlan
	// DisableReserve turns off the resident-object reservation scan
	// (for the ablation measurement).
	DisableReserve bool
	// LogAccesses records the byte size of every inverted list fetched,
	// the raw series behind Figure 2.
	LogAccesses bool
	// TrackTermUse records per-term lookup counts (term repetition
	// analysis). Costs a map insert per lookup.
	TrackTermUse bool
	// ChunkLargeLists must match the value the collection was built
	// with (0 = records stored whole).
	ChunkLargeLists int
	// DegradedOK lets searches survive unreadable inverted-list records
	// (checksum failures, I/O errors): the affected term is scored as
	// absent, the skip is counted in Counters.CorruptRecords, and the
	// rest of the query ranks normally. Without it, the first corrupt
	// record aborts the query with the storage error.
	DegradedOK bool
}

// Option configures an engine at Open time.
type Option func(*EngineOptions)

// WithOptions applies a whole EngineOptions literal.
//
// Deprecated: migration shim; use the individual With* options.
func WithOptions(o EngineOptions) Option {
	return func(dst *EngineOptions) { *dst = o }
}

// WithAnalyzer selects the text analyzer, which must match the one used
// at build time.
func WithAnalyzer(a *textproc.Analyzer) Option {
	return func(o *EngineOptions) { o.Analyzer = a }
}

// WithPlan sets Mneme buffer capacities (ignored for the B-tree). The
// default is the zero plan, "Mneme, No Cache".
func WithPlan(p BufferPlan) Option {
	return func(o *EngineOptions) { o.Plan = p }
}

// WithAccessLog records the byte size of every inverted list fetched —
// the raw series behind Figure 2.
func WithAccessLog() Option {
	return func(o *EngineOptions) { o.LogAccesses = true }
}

// WithTermUse records per-term lookup counts (term repetition
// analysis). Costs a map insert per lookup.
func WithTermUse() Option {
	return func(o *EngineOptions) { o.TrackTermUse = true }
}

// WithoutReserve turns off the resident-object reservation scan (for
// the ablation measurement).
func WithoutReserve() Option {
	return func(o *EngineOptions) { o.DisableReserve = true }
}

// WithChunking sets the chunk payload size for large lists; it must
// match the value the collection was built with (0 = stored whole).
func WithChunking(n int) Option {
	return func(o *EngineOptions) { o.ChunkLargeLists = n }
}

// WithDegraded lets searches skip unreadable inverted-list records —
// ranking what remains and counting the skips in Counters.CorruptRecords
// — instead of aborting on the first storage error.
func WithDegraded() Option {
	return func(o *EngineOptions) { o.DegradedOK = true }
}
