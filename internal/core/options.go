package core

import (
	"time"

	"repro/internal/textproc"
)

// engineOptions is the resolved configuration of an opened engine.
// It is deliberately unexported: callers configure engines only
// through the With* functional options, so fields can be added or
// reshaped without breaking the Open signature.
type engineOptions struct {
	// Analyzer must match the one used at build time; nil selects the
	// default.
	Analyzer *textproc.Analyzer
	// Plan sets Mneme buffer capacities (ignored for the B-tree). The
	// zero plan is "Mneme, No Cache".
	Plan BufferPlan
	// DisableReserve turns off the resident-object reservation scan
	// (for the ablation measurement).
	DisableReserve bool
	// LogAccesses records the byte size of every inverted list fetched,
	// the raw series behind Figure 2.
	LogAccesses bool
	// TrackTermUse records per-term lookup counts (term repetition
	// analysis). Costs a map insert per lookup.
	TrackTermUse bool
	// ChunkLargeLists must match the value the collection was built
	// with (0 = records stored whole).
	ChunkLargeLists int
	// Prune enables MaxScore dynamic pruning for document-at-a-time
	// searches with a bounded top-k: terms whose score upper bound
	// cannot affect the ranking stop driving candidate selection and
	// are skipped forward instead of decoded. The top-k results are
	// identical to exhaustive evaluation; queries outside the flat
	// sum-of-terms shape fall back to it automatically.
	Prune bool
	// DegradedOK lets searches survive unreadable inverted-list records
	// (checksum failures, I/O errors): the affected term is scored as
	// absent, the skip is counted in Counters.CorruptRecords, and the
	// rest of the query ranks normally. Without it, the first corrupt
	// record aborts the query with the storage error.
	DegradedOK bool
	// MaxInFlight bounds the number of concurrently admitted queries
	// (0, the default, means unbounded: no admission control). Queries
	// arriving at a full engine queue for up to QueueWait and are then
	// shed with an error chaining to resilience.ErrShed.
	MaxInFlight int
	// QueueWait is how long an arriving query may wait for an in-flight
	// slot before being shed. Zero sheds immediately when full.
	QueueWait time.Duration
	// RetryAttempts > 1 wraps backend record fault-ins with a
	// transient-fault retry budget of that many total attempts.
	// Zero or one disables retry (the default: a fault surfaces
	// immediately, which the fault-injection experiments rely on).
	RetryAttempts int
	// BreakerThreshold > 0 arms a circuit breaker per storage pool
	// (per file for the B-tree): that many consecutive fault-in
	// failures open the breaker, after which fetches fail fast with
	// resilience.ErrBreakerOpen instead of touching the device.
	BreakerThreshold int
	// BreakerCooldown is the number of rejected calls an open breaker
	// absorbs before admitting a half-open probe. Zero selects the
	// resilience package default.
	BreakerCooldown int
	// Global, when non-nil, marks this engine as one shard of a
	// document-partitioned collection and supplies the whole
	// collection's statistics for belief computation.
	Global *GlobalStats
	// BlockCacheMB > 0 gives the engine a decoded-postings block cache
	// of that many mebibytes (see WithBlockCache).
	BlockCacheMB int
	// ResultCacheEntries > 0 gives the engine a query-result cache
	// bounding that many memoized rankings (see WithResultCache).
	ResultCacheEntries int
	// sharedBlocks, when non-nil, overrides BlockCacheMB with an
	// existing cache instance — the NRT engine opens every segment
	// engine over one shared block cache so its budget is global.
	sharedBlocks *blockCache
}

// GlobalStats carries whole-collection statistics for an engine that
// holds only one document-partitioned shard. Belief scores depend on
// the collection's document count, average document length, and
// per-term document frequency; a shard that used its local values
// would rank differently from an unsharded build, so the shard
// coordinator distributes the global numbers to every shard engine at
// open time.
type GlobalStats struct {
	// NumDocs is the document count summed across all shards.
	NumDocs int
	// TotalLen is the token count summed across all shards.
	TotalLen int64
	// DF maps each indexed term to its global document frequency.
	DF map[string]uint64
}

// Option configures an engine at Open time.
type Option func(*engineOptions)

// WithAnalyzer selects the text analyzer, which must match the one used
// at build time.
func WithAnalyzer(a *textproc.Analyzer) Option {
	return func(o *engineOptions) { o.Analyzer = a }
}

// WithPlan sets Mneme buffer capacities (ignored for the B-tree). The
// default is the zero plan, "Mneme, No Cache".
func WithPlan(p BufferPlan) Option {
	return func(o *engineOptions) { o.Plan = p }
}

// WithAccessLog records the byte size of every inverted list fetched —
// the raw series behind Figure 2.
func WithAccessLog() Option {
	return func(o *engineOptions) { o.LogAccesses = true }
}

// WithTermUse records per-term lookup counts (term repetition
// analysis). Costs a map insert per lookup.
func WithTermUse() Option {
	return func(o *engineOptions) { o.TrackTermUse = true }
}

// WithoutReserve turns off the resident-object reservation scan (for
// the ablation measurement).
func WithoutReserve() Option {
	return func(o *engineOptions) { o.DisableReserve = true }
}

// WithChunking sets the chunk payload size for large lists; it must
// match the value the collection was built with (0 = stored whole).
func WithChunking(n int) Option {
	return func(o *engineOptions) { o.ChunkLargeLists = n }
}

// WithPruning turns on MaxScore dynamic pruning for document-at-a-time
// searches: per-term score upper bounds (from record block descriptors
// when available) let the evaluator skip postings — and, for block
// records in chunked storage, whole blocks and storage chunks — that
// cannot change the top-k. Results are exactly those of exhaustive
// evaluation; work avoided shows up in Counters.PostingsSkipped,
// BlocksSkipped, and ChunksSkipped. Per-request opt-in is available
// through Request.Prune.
func WithPruning() Option {
	return func(o *engineOptions) { o.Prune = true }
}

// WithDegraded lets searches skip unreadable inverted-list records —
// ranking what remains and counting the skips in Counters.CorruptRecords
// — instead of aborting on the first storage error. Per-request opt-in
// is available through Request.Degraded.
func WithDegraded() Option {
	return func(o *engineOptions) { o.DegradedOK = true }
}

// WithMaxInFlight bounds concurrent queries to n, queueing arrivals for
// at most queueWait before shedding them with resilience.ErrShed. The
// default (no gate) admits everything.
func WithMaxInFlight(n int, queueWait time.Duration) Option {
	return func(o *engineOptions) {
		o.MaxInFlight = n
		o.QueueWait = queueWait
	}
}

// WithRetry wraps backend record fault-ins with a transient-fault retry
// budget of attempts total tries (capped-exponential backoff with
// deterministic seeded jitter). Retries recovered this way surface in
// Counters.RetriedReads; checksum corruption is never retried.
func WithRetry(attempts int) Option {
	return func(o *engineOptions) { o.RetryAttempts = attempts }
}

// WithGlobalStats declares the engine one shard of a larger collection
// and overrides the collection statistics (document count, average
// length, per-term df) used by belief scoring with the supplied global
// values, so sharded rankings merge byte-identical to an unsharded
// build. The stats struct is retained and must not be mutated after
// Open.
func WithGlobalStats(g *GlobalStats) Option {
	return func(o *engineOptions) { o.Global = g }
}

// WithBlockCache arms the decoded-postings block cache with a budget of
// mb mebibytes (shared across all the engine's searchers): repeated
// term reads skip the backend fault-in and the record decode, serving
// immutable pre-decoded []Posting bodies instead. The cache serves the
// TAAT materializing path (whole records) and the DAAT/MaxScore
// iterator path (individual blocks). Hits and misses are counted in
// Counters.BlockCacheHits / BlockCacheMisses, and every index mutation
// invalidates the whole cache by generation bump. mb <= 0 is a no-op.
func WithBlockCache(mb int) Option {
	return func(o *engineOptions) { o.BlockCacheMB = mb }
}

// WithResultCache memoizes up to entries complete rankings keyed by
// Request.CanonicalKey: an exactly repeated query (same canonical text,
// mode, and depth) is answered from memory with OutcomeOK and a counter
// delta of one query + one Counters.ResultCacheHits. Only complete,
// undamaged rankings are stored — degraded, deadline-cut, shed, and
// score-floored (MinScore > 0) responses always re-evaluate — and any
// index mutation purges the cache. entries <= 0 is a no-op.
func WithResultCache(entries int) Option {
	return func(o *engineOptions) { o.ResultCacheEntries = entries }
}

// WithBreaker arms a per-pool circuit breaker: threshold consecutive
// fault-in failures open it, and an open breaker fails fetches fast
// (resilience.ErrBreakerOpen) for cooldown rejected calls before
// admitting a half-open probe. cooldown <= 0 selects the resilience
// package default. The cooldown is counted in rejected calls, not
// wall-clock, so breaker behaviour is deterministic under test.
func WithBreaker(threshold, cooldown int) Option {
	return func(o *engineOptions) {
		o.BreakerThreshold = threshold
		o.BreakerCooldown = cooldown
	}
}
