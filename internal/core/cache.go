package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/postings"
)

// Hot-path caching. Two layers sit above the storage backends:
//
//   - A decoded-postings block cache holds []Posting bodies that have
//     already been fetched, checksummed, and decoded, so a repeated
//     term read skips the backend fault-in and the varint/bitmap decode
//     entirely. It is shared by the TAAT materializing path (whole
//     records) and the DAAT/MaxScore iterator path (per block, through
//     postings.BlockCacheSink).
//   - A query-result cache memoizes complete, undamaged rankings per
//     canonical Request, so an exactly repeated query costs a map probe.
//
// Both caches are keyed under a generation number drawn from a global
// counter: every index mutation (AddDocument, DeleteDocument, SaveMeta,
// an NRT manifest flip) re-draws the engine's generation, which orphans
// every cached block at once without touching the cache — stale entries
// simply stop matching and age out under the clock hand. Immutable NRT
// segments share one block cache across segment engines; each segment
// engine gets its own generation at open, so retired segments orphan
// their entries the same way.

// cacheGenCounter issues block-cache generations process-wide, so a
// re-opened or invalidated engine can never collide with keys cached
// under a previous life of the same record refs.
var cacheGenCounter atomic.Uint64

func nextCacheGen() uint64 { return cacheGenCounter.Add(1) }

// wholeRecordBlk is the pseudo block index the TAAT path caches a fully
// decoded record under. Real block indexes are small (record bytes /
// BlockLen), so the top bit can never collide.
const wholeRecordBlk = ^uint32(0)

// blockKey identifies one decoded block: the owning engine's cache
// generation, the backend record ref, and the block index within the
// record (wholeRecordBlk for a whole-record TAAT decode).
type blockKey struct {
	gen uint64
	ref uint64
	blk uint32
}

// hash mixes the key for shard selection and is cheap enough to compute
// under no lock (splitmix-style multiply-xor).
func (k blockKey) hash() uint64 {
	h := k.gen*0x9e3779b97f4a7c15 ^ k.ref*0xbf58476d1ce4e5b9 ^ (uint64(k.blk)+1)*0x94d049bb133111eb
	return h ^ (h >> 29)
}

// postingsFootprint approximates the heap bytes a cached decode pins:
// the Posting structs plus their position arena. The +64 covers entry
// and map bookkeeping.
func postingsFootprint(ps []postings.Posting) int64 {
	n := int64(len(ps)) * 32
	for i := range ps {
		n += int64(cap(ps[i].Positions)) * 4
	}
	return n + 64
}

const blockCacheShards = 16

type blockEntry struct {
	key   blockKey
	ps    []postings.Posting
	bytes int64
	refd  bool // clock reference bit
}

// blockCacheShard is one lock domain of the cache: a key→slot map over
// a clock ring. Eviction sweeps the hand, clearing reference bits and
// reclaiming the first cold entry, so a hot working set survives a scan
// of one-shot fills (the 2Q/clock property) without per-hit list moves.
type blockCacheShard struct {
	mu     sync.Mutex
	cap    int64
	bytes  int64
	m      map[blockKey]int
	ring   []*blockEntry
	free   []int
	hand   int
	erased int64
}

// blockCache is the sharded decoded-postings cache. Sixteen lock
// domains keep concurrent searchers off each other's necks; per-shard
// state is a byte-bounded clock ring. Slices handed out by get are
// shared and immutable — callers and fillers must never mutate them.
type blockCache struct {
	shards [blockCacheShards]blockCacheShard

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
}

func newBlockCache(capBytes int64) *blockCache {
	c := &blockCache{}
	per := capBytes / blockCacheShards
	if per < 4096 {
		per = 4096
	}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].m = make(map[blockKey]int)
	}
	return c
}

func (c *blockCache) get(k blockKey) ([]postings.Posting, bool) {
	sh := &c.shards[k.hash()%blockCacheShards]
	sh.mu.Lock()
	if i, ok := sh.m[k]; ok {
		e := sh.ring[i]
		e.refd = true
		ps := e.ps
		sh.mu.Unlock()
		c.hits.Add(1)
		return ps, true
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// put admits a freshly decoded block. Entries larger than 1/8 of a
// shard are rejected outright: one monster list must not wipe out a
// whole shard's working set. The slice must be freshly allocated and
// never mutated after the call.
func (c *blockCache) put(k blockKey, ps []postings.Posting) {
	size := postingsFootprint(ps)
	sh := &c.shards[k.hash()%blockCacheShards]
	if size > sh.cap/8 {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[k]; ok {
		return // a racing searcher filled it first
	}
	for sh.bytes+size > sh.cap && len(sh.m) > 0 {
		sh.evictOne()
	}
	e := &blockEntry{key: k, ps: ps, bytes: size}
	var slot int
	if n := len(sh.free); n > 0 {
		slot = sh.free[n-1]
		sh.free = sh.free[:n-1]
		sh.ring[slot] = e
	} else {
		slot = len(sh.ring)
		sh.ring = append(sh.ring, e)
	}
	sh.m[k] = slot
	sh.bytes += size
	c.puts.Add(1)
}

// evictOne advances the clock hand to the first entry whose reference
// bit is clear, clearing bits as it passes. Caller holds sh.mu and
// guarantees the shard is non-empty.
func (sh *blockCacheShard) evictOne() {
	for {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		e := sh.ring[sh.hand]
		if e == nil {
			sh.hand++
			continue
		}
		if e.refd {
			e.refd = false
			sh.hand++
			continue
		}
		delete(sh.m, e.key)
		sh.bytes -= e.bytes
		sh.ring[sh.hand] = nil
		sh.free = append(sh.free, sh.hand)
		sh.hand++
		sh.erased++
		return
	}
}

// stats folds the cache's counters and occupancy into a CacheStats
// block (the block-cache half; the caller fills the result-cache half).
func (c *blockCache) stats(into *CacheStats) {
	into.BlockHits = c.hits.Load()
	into.BlockMisses = c.misses.Load()
	into.BlockPuts = c.puts.Load()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		into.BlockEntries += len(sh.m)
		into.BlockBytes += sh.bytes
		into.BlockEvictions += sh.erased
		sh.mu.Unlock()
	}
}

// blockCacheView adapts the shared blockCache to one iterator's
// postings.BlockCacheSink: it pins the (generation, record ref) half of
// the key and charges hits/misses to the owning searcher's counters.
type blockCacheView struct {
	c   *blockCache
	s   *Searcher
	gen uint64
	ref uint64
}

func (v *blockCacheView) GetBlock(i int) ([]postings.Posting, bool) {
	ps, ok := v.c.get(blockKey{gen: v.gen, ref: v.ref, blk: uint32(i)})
	if ok {
		v.s.counters.BlockCacheHits++
	} else {
		v.s.counters.BlockCacheMisses++
	}
	return ps, ok
}

func (v *blockCacheView) PutBlock(i int, ps []postings.Posting) {
	v.c.put(blockKey{gen: v.gen, ref: v.ref, blk: uint32(i)}, ps)
}

// resultCache memoizes complete rankings per canonical request key: a
// bounded clock ring, like the block cache but entry-counted (rankings
// are top-k sized and uniform) and purged wholesale on invalidation.
type resultCache struct {
	mu   sync.Mutex
	max  int
	m    map[string]int
	ring []*resultEntry
	free []int
	hand int

	hits   atomic.Int64
	misses atomic.Int64
}

type resultEntry struct {
	key  string
	res  []Result
	refd bool
}

func newResultCache(entries int) *resultCache {
	if entries < 1 {
		entries = 1
	}
	return &resultCache{max: entries, m: make(map[string]int)}
}

// get returns a copy of the cached ranking — callers own and may sort
// or truncate their response slices.
func (c *resultCache) get(key string) ([]Result, bool) {
	c.mu.Lock()
	if i, ok := c.m[key]; ok {
		e := c.ring[i]
		e.refd = true
		res := append([]Result(nil), e.res...)
		c.mu.Unlock()
		c.hits.Add(1)
		return res, true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

func (c *resultCache) put(key string, res []Result) {
	stored := append([]Result(nil), res...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return
	}
	for len(c.m) >= c.max {
		c.evictOne()
	}
	e := &resultEntry{key: key, res: stored}
	var slot int
	if n := len(c.free); n > 0 {
		slot = c.free[n-1]
		c.free = c.free[:n-1]
		c.ring[slot] = e
	} else {
		slot = len(c.ring)
		c.ring = append(c.ring, e)
	}
	c.m[key] = slot
}

// evictOne is the clock sweep; caller holds c.mu on a non-empty cache.
func (c *resultCache) evictOne() {
	for {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		e := c.ring[c.hand]
		if e == nil {
			c.hand++
			continue
		}
		if e.refd {
			e.refd = false
			c.hand++
			continue
		}
		delete(c.m, e.key)
		c.ring[c.hand] = nil
		c.free = append(c.free, c.hand)
		c.hand++
		return
	}
}

// purge empties the cache (index mutated: every memoized ranking is
// suspect). Hit/miss tallies survive — they describe traffic, not
// contents.
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]int)
	c.ring = nil
	c.free = nil
	c.hand = 0
}

func (c *resultCache) entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// CacheStats is the cache block of a Snapshot: traffic and occupancy
// for both cache layers. Nil in snapshots of engines opened without
// caching, so existing snapshot consumers are undisturbed.
type CacheStats struct {
	ResultHits    int64 `json:"result_hits"`
	ResultMisses  int64 `json:"result_misses"`
	ResultEntries int   `json:"result_entries"`

	BlockHits      int64 `json:"block_hits"`
	BlockMisses    int64 `json:"block_misses"`
	BlockPuts      int64 `json:"block_puts"`
	BlockEvictions int64 `json:"block_evictions"`
	BlockEntries   int   `json:"block_entries"`
	BlockBytes     int64 `json:"block_bytes"`
}

// Add merges two cache snapshots; the shard coordinator uses it to
// aggregate per-engine stats into one collection-level view.
func (s CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{
		ResultHits:     s.ResultHits + o.ResultHits,
		ResultMisses:   s.ResultMisses + o.ResultMisses,
		ResultEntries:  s.ResultEntries + o.ResultEntries,
		BlockHits:      s.BlockHits + o.BlockHits,
		BlockMisses:    s.BlockMisses + o.BlockMisses,
		BlockPuts:      s.BlockPuts + o.BlockPuts,
		BlockEvictions: s.BlockEvictions + o.BlockEvictions,
		BlockEntries:   s.BlockEntries + o.BlockEntries,
		BlockBytes:     s.BlockBytes + o.BlockBytes,
	}
}

// cacheStats assembles the engine's CacheStats, or nil when neither
// cache layer is configured.
func (e *Engine) cacheStats() *CacheStats {
	if e.blocks == nil && e.results == nil {
		return nil
	}
	cs := &CacheStats{}
	if e.blocks != nil {
		e.blocks.stats(cs)
	}
	if e.results != nil {
		cs.ResultHits = e.results.hits.Load()
		cs.ResultMisses = e.results.misses.Load()
		cs.ResultEntries = e.results.entries()
	}
	return cs
}

// InvalidateCaches re-draws the engine's cache generation — orphaning
// every cached decoded block — and purges the result cache. Mutation
// paths call it automatically; it is exported for callers that mutate
// storage behind the engine's back.
func (e *Engine) InvalidateCaches() {
	e.gen.Store(nextCacheGen())
	if e.results != nil {
		e.results.purge()
	}
}
