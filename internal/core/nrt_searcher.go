package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/inference"
	"repro/internal/postings"
	"repro/internal/resilience"
)

// Run evaluates one Request against the live collection: every flushed
// segment plus the searchable memtable tail. The contract matches
// Searcher.Run (shed, deadline, degraded, pruning, per-request counter
// delta); rankings are identical to a batch build of the same document
// prefix because the merged per-term list — segment lists concatenated
// with the watermark-truncated memtable list — is exactly the batch
// list, and document statistics come from the same append-only tables.
// Safe for concurrent use, including concurrently with Ingest, Flush,
// and Compact.
func (e *NRTEngine) Run(ctx context.Context, req Request) (Response, error) {
	if req.Deadline > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
		defer cancel()
	}
	if g := e.gate; g != nil {
		if err := g.Acquire(ctx); err != nil {
			var delta Counters
			if errors.Is(err, resilience.ErrShed) {
				delta.Shed = 1
			} else {
				delta.DeadlineHits = 1
			}
			e.agg.add(delta)
			e.met.observeQuery(delta)
			err = fmt.Errorf("core: query not admitted: %w", err)
			return Response{Counters: delta, Outcome: outcomeOf(err, delta)}, err
		}
		defer g.Release()
	}

	// Result-cache probe: keys embed the visibility watermark, so a
	// memoized ranking can only be served to a query that would see the
	// exact same document prefix — ingest moves the watermark and
	// thereby invalidates, while flush and compaction flips (which
	// preserve rankings by construction) don't need to.
	rc := e.results
	cacheable := rc != nil && req.MinScore == 0
	if cacheable {
		e.pubMu.Lock()
		w := e.docCount
		e.pubMu.Unlock()
		if res, ok := rc.get(nrtResultKey(w, req)); ok {
			delta := Counters{Queries: 1, ResultCacheHits: 1}
			e.agg.add(delta)
			e.met.observeQuery(delta)
			return Response{Results: res, Counters: delta, Outcome: OutcomeOK}, nil
		}
	}

	// Queries hold the view read-lock for their whole evaluation:
	// flush/compact flips wait for them, so the captured segment
	// engines cannot be closed underfoot.
	e.viewMu.RLock()
	defer e.viewMu.RUnlock()

	n, err := normalizeQueryWith(e.an, req.Query)
	if err != nil {
		var delta Counters
		return Response{Counters: delta, Outcome: outcomeOf(err, delta)}, err
	}
	q := e.newQueryLocked(ctx, req)
	q.own.Queries++
	if n == nil {
		return q.finish(nil, nil)
	}
	pins := make([]Pin, 0, len(q.subs))
	for _, sub := range q.subs {
		pins = append(pins, sub.e.reserve(n))
	}
	defer func() {
		for _, p := range pins {
			p.Release()
		}
	}()

	var res []Result
	switch {
	case req.Mode == ModeDAAT && (e.opts.Prune || req.Prune):
		res, err = inference.EvaluateMaxScoreFloor(n, q, req.TopK, req.MinScore)
	case req.Mode == ModeDAAT:
		res, err = inference.EvaluateDAAT(n, q, req.TopK)
	default:
		res, err = inference.EvaluateTAAT(n, q, req.TopK)
	}
	resp, err := q.finish(res, err)
	if cacheable && err == nil && resp.Outcome == OutcomeOK {
		// Stored under the watermark this query actually evaluated at
		// (it may have advanced past the one probed above).
		rc.put(nrtResultKey(q.w, req), resp.Results)
	}
	return resp, err
}

// nrtResultKey scopes a request's canonical key to a visibility
// watermark: the NRT result cache's unit of invalidation.
func nrtResultKey(w uint32, req Request) string {
	return strconv.FormatUint(uint64(w), 10) + "\x00" + req.CanonicalKey()
}

// Explain returns the belief breakdown a query assigns to one document,
// evaluated over the same merged view a Run would see.
func (e *NRTEngine) Explain(query string, doc uint32) (*inference.Explanation, error) {
	e.viewMu.RLock()
	defer e.viewMu.RUnlock()
	n, err := normalizeQueryWith(e.an, query)
	if err != nil {
		return nil, err
	}
	if n == nil {
		return &inference.Explanation{Op: "(all terms stopped)", Belief: 0}, nil
	}
	q := e.newQueryLocked(nil, Request{})
	ex, err := inference.Explain(n, q, doc)
	q.finish(nil, nil)
	return ex, err
}

// nrtQuery is one request's consistent cut of the live collection: a
// sub-searcher per segment, the memtable, and the visibility watermark
// with its document statistics, all captured at query start. It
// implements inference.Source, StreamSource, and DFSource by
// concatenating per-segment lists with the memtable tail — the doc-ID
// ranges are disjoint and ascending by construction, so concatenation
// is the merge.
type nrtQuery struct {
	e    *NRTEngine
	subs []*Searcher // one per segment, in doc order
	mem  *memtable
	w    uint32   // visibility watermark: docs < w are in scope
	lens []uint32 // per-doc token counts for docs < w
	toks int64    // total token count across docs < w
	own  Counters // work not attributable to a sub-searcher
}

// newQueryLocked captures the query view. Caller holds e.viewMu.RLock.
func (e *NRTEngine) newQueryLocked(ctx context.Context, req Request) *nrtQuery {
	q := &nrtQuery{e: e, mem: e.mem}
	e.pubMu.Lock()
	q.w = e.docCount
	q.lens = e.lens[:q.w]
	q.toks = e.totalToks
	e.pubMu.Unlock()
	for _, s := range e.segs {
		sub := s.eng.Acquire()
		if ctx != nil && ctx.Done() != nil {
			sub.ctx = ctx
		}
		sub.reqDegraded = req.Degraded
		sub.reqPrune = req.Prune
		q.subs = append(q.subs, sub)
	}
	return q
}

// finish settles every sub-searcher (skip statistics, pooled buffers,
// engine-aggregate merges on the segment engines), folds the combined
// per-request delta into the NRT aggregates, and labels the outcome.
func (q *nrtQuery) finish(res []Result, err error) (Response, error) {
	delta := q.own
	deadlined := false
	for _, sub := range q.subs {
		sub.finishIters()
		sub.flush()
		delta = delta.Add(sub.counters)
		if sub.deadlined {
			deadlined = true
		}
	}
	// Each sub latches its own deadline hit; a query is cut short once.
	if delta.DeadlineHits > 1 {
		delta.DeadlineHits = 1
	}
	if err == nil && deadlined {
		err = fmt.Errorf("core: query cut short: %w", resilience.ErrDeadline)
	}
	q.e.agg.add(delta)
	q.e.met.observeQuery(delta)
	return Response{Results: res, Counters: delta, Outcome: outcomeOf(err, delta)}, err
}

// Postings implements inference.Source: the materialized merged list
// for term — segment lists in segment order, then the memtable's
// watermark-truncated tail. The returned slice is freshly allocated
// (sub-searcher buffers are pooled and reclaimed at finish).
func (q *nrtQuery) Postings(term string) ([]postings.Posting, bool, error) {
	var out []postings.Posting
	found := false
	for _, sub := range q.subs {
		ps, ok, err := sub.Postings(term)
		if err != nil {
			return nil, false, err
		}
		if ok {
			out = append(out, ps...)
			found = true
		}
	}
	if mps, _ := q.mem.lookup(term, q.w); len(mps) > 0 {
		q.own.Lookups++
		q.own.Postings += int64(len(mps))
		out = append(out, mps...)
		found = true
	}
	if !found {
		return nil, false, nil
	}
	return out, true, nil
}

// Iterator implements inference.StreamSource: the per-segment streaming
// iterators chained with the memtable iterator. The chain advances
// block-skipping segment readers natively and reports an exact summed
// DF, so DAAT and MaxScore evaluation over an NRT view match the
// batch-built equivalent.
func (q *nrtQuery) Iterator(term string) (inference.PostingIterator, bool, error) {
	var parts []inference.PostingIterator
	for _, sub := range q.subs {
		it, ok, err := sub.Iterator(term)
		if err != nil {
			return nil, false, err
		}
		if ok {
			parts = append(parts, it)
		}
	}
	if mi := q.mem.iterator(term, q.w); mi != nil {
		q.own.Lookups++
		parts = append(parts, &memCountingIter{mi: mi, c: &q.own})
	}
	if len(parts) == 0 {
		return nil, false, nil
	}
	return inference.NewChain(parts...), true, nil
}

// NumDocs implements inference.Source: the watermark, so belief scores
// use the collection size this query was admitted against.
func (q *nrtQuery) NumDocs() int { return int(q.w) }

// DocLen implements inference.Source.
func (q *nrtQuery) DocLen(doc uint32) int {
	if doc < q.w {
		return int(q.lens[doc])
	}
	return 0
}

// AvgDocLen implements inference.Source.
func (q *nrtQuery) AvgDocLen() float64 {
	if q.w == 0 {
		return 0
	}
	return float64(q.toks) / float64(q.w)
}

// TermDF implements inference.DFSource. The chained iterator's DF (and
// the materialized list's length) already is the collection-global
// document frequency — segments partition the doc space — so there is
// no override table.
func (q *nrtQuery) TermDF(string) (uint64, bool) { return 0, false }

// memCountingIter counts memtable postings into the query's own
// counters as they stream past, mirroring what countingIterator does
// for segment reads.
type memCountingIter struct {
	mi *memIter
	c  *Counters
}

func (m *memCountingIter) Next() (postings.Posting, bool) {
	p, ok := m.mi.Next()
	if ok {
		m.c.Postings++
	}
	return p, ok
}

func (m *memCountingIter) Advance(target uint32) (postings.Posting, bool) {
	p, ok := m.mi.Advance(target)
	if ok {
		m.c.Postings++
	}
	return p, ok
}

func (m *memCountingIter) DF() uint64            { return m.mi.DF() }
func (m *memCountingIter) MaxTF() (uint32, bool) { return m.mi.MaxTF() }
func (m *memCountingIter) Err() error            { return m.mi.Err() }
