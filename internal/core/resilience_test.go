package core

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/vfs"
)

// TestSearchCtxDeadlineTypedAndCounted: a query whose context is
// already expired fetches nothing, returns a typed error chaining to
// both resilience.ErrDeadline and the context error, and is counted in
// DeadlineHits — never passed off as a complete (empty) ranking.
func TestSearchCtxDeadlineTypedAndCounted(t *testing.T) {
	fs := newFS()
	queries := concurrencyCorpus(t, fs, "dl")
	eng, err := Open(fs, "dl", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	want, err := eng.Search(queries[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline matched nothing")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := eng.SearchCtx(ctx, queries[0], 10)
	if !errors.Is(err, resilience.ErrDeadline) {
		t.Fatalf("expired ctx: err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expired ctx: err = %v does not chain to ctx.Err()", err)
	}
	if len(got) != 0 {
		t.Fatalf("expired-before-start query fetched %d results", len(got))
	}
	c := eng.Counters()
	if c.DeadlineHits != 1 {
		t.Fatalf("DeadlineHits = %d, want 1", c.DeadlineHits)
	}

	// A background context behaves exactly like plain Search.
	got, err = eng.SearchCtx(context.Background(), queries[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "background ctx", got, want)
	if c := eng.Counters(); c.DeadlineHits != 1 {
		t.Fatalf("background ctx bumped DeadlineHits to %d", c.DeadlineHits)
	}
}

// countdownCtx is a deterministic "deadline": it expires after its
// Err method has been consulted a fixed number of times, letting tests
// cut a query at an exact evaluation boundary with no wall clock.
type countdownCtx struct {
	context.Context
	done  chan struct{}
	calls int64
	after int64
}

func newCountdownCtx(after int64) *countdownCtx {
	return &countdownCtx{Context: context.Background(), done: make(chan struct{}), after: after}
}

func (c *countdownCtx) Done() <-chan struct{} { return c.done }
func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.DeadlineExceeded
	}
	return nil
}

// TestSearchCtxMidQueryPartialResults: the deadline fires between two
// term fetches. The terms already scored produce a partial ranking,
// the unfetched terms read as absent, and the returned error labels
// the truncation.
func TestSearchCtxMidQueryPartialResults(t *testing.T) {
	fs := newFS()
	concurrencyCorpus(t, fs, "mid")
	eng, err := Open(fs, "mid", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// First boundary check passes (w1 is fetched), the second expires:
	// w2 and w3 are never fetched.
	ctx := newCountdownCtx(1)
	got, err := eng.SearchCtx(ctx, "#or(w1 w2 w3)", 10)
	if !errors.Is(err, resilience.ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-query deadline: err = %v", err)
	}
	if len(got) == 0 {
		t.Fatal("partial ranking is empty although one term was scored")
	}
	c := eng.Counters()
	if c.DeadlineHits != 1 {
		t.Fatalf("DeadlineHits = %d, want 1", c.DeadlineHits)
	}
	if c.Lookups != 1 {
		t.Fatalf("Lookups = %d, want exactly the one pre-deadline fetch", c.Lookups)
	}
}

// TestDeadlineNoGoroutineLeak: cancelled batches and shed queries must
// not strand worker goroutines or gate slots. After the storm the
// goroutine count returns to its baseline and the gate is empty.
func TestDeadlineNoGoroutineLeak(t *testing.T) {
	fs := newFS()
	queries := concurrencyCorpus(t, fs, "leak")
	eng, err := Open(fs, "leak", BackendMneme, WithAnalyzer(plainAnalyzer()),
		WithMaxInFlight(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Microsecond)
		if _, err := eng.SearchBatchCtx(ctx, queries, Parallelism(6), TopK(5),
			QueryTimeout(50*time.Microsecond)); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("cancelled batch: %v", err)
		}
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before storm, %d after", before, n)
	}
	if n := eng.gate.InFlight(); n != 0 {
		t.Fatalf("gate still holds %d slots after all queries returned", n)
	}

	// The engine still serves normal queries.
	if _, err := eng.Search(queries[0], 10); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRetryRecoversTransientFault: with WithRetry, one injected
// transient read fault is invisible to the caller — identical rankings,
// the recovery counted in RetriedReads and surfaced through Snapshot —
// while an engine without retry still sees the raw fault (defaults are
// untouched).
func TestEngineRetryRecoversTransientFault(t *testing.T) {
	fs := newFS()
	queries := concurrencyCorpus(t, fs, "rt")
	for _, kind := range []BackendKind{BackendMneme, BackendBTree} {
		t.Run(kind.String(), func(t *testing.T) {
			eng, err := Open(fs, "rt", kind, WithAnalyzer(plainAnalyzer()), WithRetry(3))
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			want, err := eng.Search(queries[0], 10)
			if err != nil {
				t.Fatal(err)
			}

			fs.SetFaultPlan(vfs.NewFaultPlan(1).FailReadEvery(1).Once())
			got, err := eng.Search(queries[0], 10)
			fs.SetFaultPlan(nil)
			if err != nil {
				t.Fatalf("search with transient fault under retry: %v", err)
			}
			sameResults(t, "retried query", got, want)
			c := eng.Counters()
			if c.RetriedReads != 1 {
				t.Fatalf("RetriedReads = %d, want 1", c.RetriedReads)
			}
			if c.CorruptRecords != 0 {
				t.Fatalf("recovered fault still counted %d corrupt records", c.CorruptRecords)
			}
			if v := eng.met.retried.Value(); v != 1 {
				t.Fatalf("retried_reads_total metric = %d, want 1", v)
			}
			snap := eng.Snapshot()
			if snap.Resilience == nil || snap.Resilience.RetriedReads != 1 {
				t.Fatalf("snapshot resilience block = %+v", snap.Resilience)
			}
			eng.ResetCounters()
			if c := eng.Counters(); c.RetriedReads != 0 {
				t.Fatalf("RetriedReads = %d after reset", c.RetriedReads)
			}

			// No retry configured: the same fault surfaces raw.
			strict, err := Open(fs, "rt", kind, WithAnalyzer(plainAnalyzer()))
			if err != nil {
				t.Fatal(err)
			}
			defer strict.Close()
			fs.SetFaultPlan(vfs.NewFaultPlan(1).FailReadEvery(1).Once())
			_, err = strict.Search(queries[0], 10)
			fs.SetFaultPlan(nil)
			if !errors.Is(err, vfs.ErrInjected) {
				t.Fatalf("strict engine: err = %v, want ErrInjected", err)
			}
			if snap := strict.Snapshot(); snap.Resilience != nil {
				t.Fatalf("plain engine grew a resilience block: %+v", snap.Resilience)
			}
		})
	}
}

// TestEngineBreakerFailsFastAndRecovers drives the B-tree engine's
// breaker through a full outage: threshold failures open it, open-state
// queries are answered degraded without touching the device, and once
// the outage clears the half-open probe closes it again.
func TestEngineBreakerFailsFastAndRecovers(t *testing.T) {
	fs := newFS()
	concurrencyCorpus(t, fs, "brk")
	eng, err := Open(fs, "brk", BackendBTree, WithAnalyzer(plainAnalyzer()),
		WithDegraded(), WithBreaker(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const query = "w1"
	want, err := eng.Search(query, 10) // also warms the internal-node cache
	if err != nil {
		t.Fatal(err)
	}

	// Persistent outage: two failing fetches trip the breaker.
	fs.SetFaultPlan(vfs.NewFaultPlan(1).FailReadEvery(1))
	for i := 0; i < 2; i++ {
		if _, err := eng.Search(query, 10); err != nil {
			t.Fatalf("degraded query %d under outage: %v", i, err)
		}
	}
	fs.SetFaultPlan(nil)
	snap := eng.Snapshot()
	if snap.Resilience == nil || snap.Resilience.Breakers["btree"].State != "open" {
		t.Fatalf("breaker not open after threshold: %+v", snap.Resilience)
	}

	// Open: queries are shielded — degraded answers, zero device reads.
	readsBefore := fs.Stats().FileAccesses
	if _, err := eng.Search(query, 10); err != nil {
		t.Fatalf("query against open breaker: %v", err)
	}
	if got := fs.Stats().FileAccesses; got != readsBefore {
		t.Fatalf("open breaker touched the device: %d accesses, was %d", got, readsBefore)
	}
	if c := eng.Counters(); c.CorruptRecords < 3 {
		t.Fatalf("CorruptRecords = %d, want every shielded fetch counted", c.CorruptRecords)
	}

	// Outage over: within the cooldown budget a probe closes the
	// breaker and service returns to clean rankings.
	var recovered bool
	for i := 0; i < 10 && !recovered; i++ {
		got, err := eng.Search(query, 10)
		if err != nil {
			t.Fatalf("recovery query %d: %v", i, err)
		}
		if eng.treeBreaker.State() == resilience.Closed {
			recovered = true
			sameResults(t, "post-recovery", got, want)
		}
	}
	if !recovered {
		t.Fatalf("breaker never closed after outage cleared: %+v", eng.treeBreaker.Snap())
	}
	snap = eng.Snapshot()
	if b := snap.Resilience.Breakers["btree"]; b.Opens != 1 || b.Probes < 1 {
		t.Fatalf("breaker snap = %+v, want 1 open and >=1 probe", b)
	}
}

// TestAdmissionGateShedsAndRecovers: with the only slot occupied a
// query is shed with the typed error and counted (but not as an
// evaluated query); with the slot free the same query runs normally.
func TestAdmissionGateShedsAndRecovers(t *testing.T) {
	fs := newFS()
	queries := concurrencyCorpus(t, fs, "gate")
	eng, err := Open(fs, "gate", BackendMneme, WithAnalyzer(plainAnalyzer()),
		WithMaxInFlight(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if err := eng.gate.Acquire(nil); err != nil { // occupy the only slot
		t.Fatal(err)
	}
	_, err = eng.Search(queries[0], 10)
	if !errors.Is(err, resilience.ErrShed) {
		t.Fatalf("full gate: err = %v, want ErrShed", err)
	}
	c := eng.Counters()
	if c.Shed != 1 || c.Queries != 0 {
		t.Fatalf("counters after shed = %+v, want Shed=1 Queries=0", c)
	}
	eng.gate.Release()

	got, err := eng.Search(queries[0], 10)
	if err != nil {
		t.Fatalf("freed gate: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("freed gate returned no results")
	}
	snap := eng.Snapshot()
	if snap.Resilience == nil || snap.Resilience.Shed != 1 || snap.Resilience.MaxInFlight != 1 {
		t.Fatalf("snapshot resilience = %+v", snap.Resilience)
	}

	// Queue-wait path: a queued query is admitted once the holder
	// releases within the wait budget.
	waiter, err := Open(fs, "gate", BackendMneme, WithAnalyzer(plainAnalyzer()),
		WithMaxInFlight(1, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	if err := waiter.gate.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	go func() {
		<-release
		waiter.gate.Release()
	}()
	close(release)
	if _, err := waiter.Search(queries[0], 10); err != nil {
		t.Fatalf("queued query not admitted: %v", err)
	}
	if c := waiter.Counters(); c.Shed != 0 || c.Queries != 1 {
		t.Fatalf("queued-query counters = %+v", c)
	}
}

// TestSearchBatchShedUnderLoad: with the gate fully occupied every
// batch query sheds — typed in SearchBatchCtx outcomes, silently
// skipped (but counted) by SearchBatch, which must not abort. Once the
// gate frees, the same batch completes and matches the serial run.
func TestSearchBatchShedUnderLoad(t *testing.T) {
	fs := newFS()
	queries := concurrencyCorpus(t, fs, "shedbatch")
	eng, err := Open(fs, "shedbatch", BackendMneme, WithAnalyzer(plainAnalyzer()),
		WithMaxInFlight(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Occupy both slots: deterministic total shed.
	for i := 0; i < 2; i++ {
		if err := eng.gate.Acquire(nil); err != nil {
			t.Fatal(err)
		}
	}
	out, err := eng.SearchBatchCtx(nil, queries, Parallelism(4), TopK(10))
	if err != nil {
		t.Fatalf("batch over full gate: %v", err)
	}
	for i, o := range out {
		if !errors.Is(o.Err, resilience.ErrShed) {
			t.Fatalf("outcome %d = %+v, want ErrShed", i, o)
		}
	}
	res, err := eng.SearchBatch(queries, Parallelism(4), TopK(10))
	if err != nil {
		t.Fatalf("SearchBatch treated shed as fatal: %v", err)
	}
	for i, r := range res {
		if r != nil {
			t.Fatalf("shed query %d returned results", i)
		}
	}
	c := eng.Counters()
	if c.Queries != 0 || c.Shed != int64(2*len(queries)) {
		t.Fatalf("counters = %+v, want Queries=0 Shed=%d", c, 2*len(queries))
	}

	// Free the gate: the batch is served and matches a serial engine.
	eng.gate.Release()
	eng.gate.Release()
	ser, err := Open(fs, "shedbatch", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ser.SearchBatch(queries, TopK(10))
	ser.Close()
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.SearchBatch(queries, Parallelism(4), TopK(10))
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		sameResults(t, "freed gate", got[i], want[i])
	}
	if c := eng.Counters(); c.Queries != int64(len(queries)) {
		t.Fatalf("Queries = %d, want %d", c.Queries, len(queries))
	}
}

// soakRounds returns the chaos-round count: the default keeps the
// normal test suite fast; `make soak` raises it via SOAK_ROUNDS.
func soakRounds() int {
	if s := os.Getenv("SOAK_ROUNDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

// TestChaosSoak is the resilience invariant test: a randomized-but-
// seeded fault schedule runs over the full query matrix on both
// backends with every resilience feature armed, and EVERY query must
// either (a) return rankings identical to the clean run, or (b) carry
// a typed label — an error chaining to ErrShed/ErrDeadline, or a
// degraded/cut-short count on its searcher. A query that returns
// divergent rankings with no label is a silent wrong result: the one
// outcome the resilience layer exists to make impossible.
func TestChaosSoak(t *testing.T) {
	fs := newFS()
	queries := concurrencyCorpus(t, fs, "chaos")
	rounds := soakRounds()

	for _, cfg := range []struct {
		name string
		kind BackendKind
		opts []Option
	}{
		{"mneme", BackendMneme, []Option{WithPlan(BufferPlan{SmallBytes: 12 << 10, MediumBytes: 64 << 10, LargeBytes: 256 << 10})}},
		{"btree", BackendBTree, nil},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			clean, err := Open(fs, "chaos", cfg.kind, append([]Option{WithAnalyzer(plainAnalyzer())}, cfg.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]Result, len(queries))
			for i, q := range queries {
				if want[i], err = clean.Search(q, 10); err != nil {
					t.Fatal(err)
				}
			}
			clean.Close()

			chaotic, err := Open(fs, "chaos", cfg.kind, append([]Option{
				WithAnalyzer(plainAnalyzer()),
				WithDegraded(),
				WithRetry(3),
				WithBreaker(5, 7),
				WithMaxInFlight(4, time.Second),
			}, cfg.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			defer chaotic.Close()

			var silent sync.Map // query index -> true on silent divergence
			for round := 0; round < rounds; round++ {
				seed := int64(round + 1)
				rng := rand.New(rand.NewSource(seed * 31))
				var plan *vfs.FaultPlan
				switch round % 3 {
				case 0: // background noise: each read may fail
					plan = vfs.NewFaultPlan(seed).WithProbability(0.02 + 0.02*float64(round%5))
				case 1: // periodic hard faults
					plan = vfs.NewFaultPlan(seed).FailReadEvery(int64(3 + rng.Intn(9)))
				case 2: // one transient fault; retry should hide it entirely
					plan = vfs.NewFaultPlan(seed).FailReadEvery(1).Once()
				}
				fs.SetFaultPlan(plan)

				const workers = 4
				var wg sync.WaitGroup
				for g := 0; g < workers; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						s := chaotic.Acquire()
						for i := g; i < len(queries); i += workers {
							var ctx context.Context
							if i%7 == 3 { // deterministic deadline chaos
								c, cancel := context.WithCancel(context.Background())
								cancel()
								ctx = c
							}
							pre := s.Counters()
							got, err := s.SearchCtx(ctx, queries[i], 10)
							post := s.Counters()
							switch {
							case err != nil:
								if !errors.Is(err, resilience.ErrShed) && !errors.Is(err, resilience.ErrDeadline) {
									t.Errorf("round %d query %d: untyped error %v", round, i, err)
								}
							case post.CorruptRecords > pre.CorruptRecords || post.DeadlineHits > pre.DeadlineHits:
								// Degraded or cut short — labelled by counters;
								// the ranking is allowed to differ.
							default:
								// No label anywhere: the ranking must be exact.
								if len(got) != len(want[i]) {
									silent.Store(i, true)
									t.Errorf("round %d query %d: SILENT divergence: %d results, want %d",
										round, i, len(got), len(want[i]))
									continue
								}
								for r := range got {
									if got[r] != want[i][r] {
										silent.Store(i, true)
										t.Errorf("round %d query %d rank %d: SILENT divergence: %v, want %v",
											round, i, r, got[r], want[i][r])
										break
									}
								}
							}
						}
					}(g)
				}
				wg.Wait()
				fs.SetFaultPlan(nil)
				if t.Failed() {
					t.FailNow()
				}
			}

			// Full recovery: with faults gone, repeated passes drain any
			// open breakers and a pass must eventually run completely
			// clean — every query exact, nothing newly degraded.
			recovered := false
			for pass := 0; pass < 6 && !recovered; pass++ {
				before := chaotic.Counters()
				cleanPass := true
				for i, q := range queries {
					got, err := chaotic.Search(q, 10)
					if err != nil {
						t.Fatalf("recovery pass %d query %d: %v", pass, i, err)
					}
					if len(got) != len(want[i]) {
						cleanPass = false
						continue
					}
					for r := range got {
						if got[r] != want[i][r] {
							cleanPass = false
							break
						}
					}
				}
				after := chaotic.Counters()
				recovered = cleanPass && after.CorruptRecords == before.CorruptRecords
			}
			if !recovered {
				t.Fatalf("engine never recovered to clean service after chaos: %+v",
					chaotic.Snapshot().Resilience)
			}

			// Accounting: every attempt is either an evaluated query or a
			// counted shed — nothing vanishes.
			c := chaotic.Counters()
			if c.Queries+c.Shed == 0 || c.Queries == 0 {
				t.Fatalf("soak accounting off: %+v", c)
			}
		})
	}
}
