package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/postings"
	"repro/internal/textproc"
)

func memToks(terms ...string) []textproc.Token {
	toks := make([]textproc.Token, len(terms))
	for i, s := range terms {
		toks[i] = textproc.Token{Term: s, Pos: uint32(i)}
	}
	return toks
}

func TestMemtableWatermarkSnapshot(t *testing.T) {
	m := newMemtable()
	m.add(100, memToks("apple", "banana", "apple"))
	m.add(101, memToks("apple"))

	// A reader at watermark 101 sees only doc 100, even if it looks
	// up the term after more documents have landed.
	ps, maxTF := m.lookup("apple", 101)
	if len(ps) != 1 || ps[0].Doc != 100 || ps[0].TF() != 2 {
		t.Fatalf("lookup@101 = %v", ps)
	}
	if maxTF < 2 {
		t.Fatalf("maxTF bound %d below actual 2", maxTF)
	}
	m.add(102, memToks("apple", "apple", "apple"))
	ps2, _ := m.lookup("apple", 101)
	if !reflect.DeepEqual(ps, ps2) {
		t.Fatal("watermarked view changed under concurrent append")
	}
	if ps3, _ := m.lookup("apple", 103); len(ps3) != 3 {
		t.Fatalf("lookup@103 sees %d docs, want 3", len(ps3))
	}
	// Terms born after the reader's watermark are invisible to it.
	m.add(103, memToks("cherry"))
	if ps, _ := m.lookup("cherry", 103); ps != nil {
		t.Fatalf("cherry visible below its watermark: %v", ps)
	}
	docs, toks, bytes := m.stats()
	if docs != 4 || toks != 8 || bytes <= 0 {
		t.Fatalf("stats = (%d,%d,%d)", docs, toks, bytes)
	}
}

func TestMemtableIteratorMatchesLookup(t *testing.T) {
	m := newMemtable()
	for d := uint32(0); d < 50; d++ {
		n := int(d%3) + 1
		terms := make([]string, n)
		for i := range terms {
			terms[i] = fmt.Sprintf("t%d", (int(d)+i)%4)
		}
		m.add(d, memToks(terms...))
	}
	for _, w := range []uint32{0, 1, 25, 50, 99} {
		for i := 0; i < 4; i++ {
			term := fmt.Sprintf("t%d", i)
			want, _ := m.lookup(term, w)
			it := m.iterator(term, w)
			var got []postings.Posting
			if it != nil {
				if it.DF() != uint64(len(want)) {
					t.Fatalf("%s@%d: DF %d != len %d", term, w, it.DF(), len(want))
				}
				for {
					p, ok := it.Next()
					if !ok {
						break
					}
					got = append(got, p)
				}
			}
			if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("%s@%d: iterator %v != lookup %v", term, w, got, want)
			}
		}
	}
}

// FuzzMemtableIterator builds a memtable from fuzz-chosen ingest
// batches and checks its iterators against a plain map oracle: Next
// streams exactly the watermark-truncated list, Advance agrees with a
// linear scan, and the TF bound is sound.
func FuzzMemtableIterator(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0xFF, 1, 1, 0xFF, 4}, uint16(2))
	f.Add([]byte{0xFF, 0xFF, 7, 7, 7, 7}, uint16(0))
	f.Add([]byte{9, 0xFF, 9, 0xFF, 9, 0xFF, 9}, uint16(1))
	f.Fuzz(func(t *testing.T, data []byte, wseed uint16) {
		const base = 50 // global IDs start past an imaginary segment
		m := newMemtable()
		oracle := make(map[string][]postings.Posting)
		doc := uint32(base)
		var toks []textproc.Token
		flush := func() {
			if len(toks) == 0 {
				return
			}
			m.add(doc, toks)
			perTerm := make(map[string][]uint32)
			for _, tk := range toks {
				perTerm[tk.Term] = append(perTerm[tk.Term], tk.Pos)
			}
			for term, pos := range perTerm {
				oracle[term] = append(oracle[term], postings.Posting{Doc: doc, Positions: pos})
			}
			doc++
			toks = nil
		}
		for _, b := range data {
			if b == 0xFF {
				flush()
				continue
			}
			if len(toks) >= 8 {
				flush()
			}
			toks = append(toks, textproc.Token{
				Term: fmt.Sprintf("t%d", b%16),
				Pos:  uint32(len(toks)),
			})
		}
		flush()

		w := base + uint32(wseed)%(doc-base+1)
		for term, full := range oracle {
			var want []postings.Posting
			for _, p := range full {
				if p.Doc < w {
					want = append(want, p)
				}
			}
			it := m.iterator(term, w)
			if it == nil {
				if len(want) != 0 {
					t.Fatalf("%s@%d: iterator nil, oracle has %d", term, w, len(want))
				}
				continue
			}
			if it.DF() != uint64(len(want)) {
				t.Fatalf("%s@%d: DF %d != %d", term, w, it.DF(), len(want))
			}
			bound, ok := it.MaxTF()
			var got []postings.Posting
			for {
				p, more := it.Next()
				if !more {
					break
				}
				if !ok || p.TF() > int(bound) {
					t.Fatalf("%s@%d: tf %d above bound (%d,%v)", term, w, p.TF(), bound, ok)
				}
				got = append(got, p)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s@%d: Next stream %v != oracle %v", term, w, got, want)
			}
			// Advance-vs-Next: re-open and hop by fuzz-derived strides.
			it = m.iterator(term, w)
			i := 0
			stride := uint32(wseed%7) + 1
			for i < len(want) {
				target := want[i].Doc + stride
				for i < len(want) && want[i].Doc < target {
					i++
				}
				p, more := it.Advance(target)
				if i >= len(want) {
					if more {
						t.Fatalf("%s@%d: Advance(%d) past end → doc %d", term, w, target, p.Doc)
					}
					break
				}
				if !more || p.Doc != want[i].Doc {
					t.Fatalf("%s@%d: Advance(%d) = (%v,%v), want doc %d",
						term, w, target, p.Doc, more, want[i].Doc)
				}
				i++
			}
		}
	})
}
