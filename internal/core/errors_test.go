package core

import (
	"testing"

	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/vfs"
)

func TestOpenCorruptedArtifacts(t *testing.T) {
	fs := newFS()
	buildTiny(t, fs, "tiny")

	// Corrupt dictionary image.
	f, _ := fs.Open("tiny" + suffixLexicon)
	f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, 0)
	if _, err := Open(fs, "tiny", BackendMneme, WithAnalyzer(plainAnalyzer())); err == nil {
		t.Fatal("corrupt lexicon accepted")
	}

	// Rebuild, then corrupt the document table.
	fs = newFS()
	buildTiny(t, fs, "tiny")
	f, _ = fs.Open("tiny" + suffixDocMeta)
	f.Truncate(1)
	if _, err := Open(fs, "tiny", BackendMneme, WithAnalyzer(plainAnalyzer())); err == nil {
		t.Fatal("corrupt doc table accepted")
	}

	// Missing store file.
	fs = newFS()
	buildTiny(t, fs, "tiny")
	fs.Remove("tiny" + suffixMneme)
	if _, err := Open(fs, "tiny", BackendMneme, WithAnalyzer(plainAnalyzer())); err == nil {
		t.Fatal("missing store accepted")
	}
}

func TestRebuildOverwritesArtifacts(t *testing.T) {
	fs := newFS()
	buildTiny(t, fs, "tiny")
	// Rebuilding under the same name must replace the dictionary and
	// doc table (Build writes fresh backend files under new names would
	// collide, so use a changed corpus and confirm the meta updates).
	docs := []index.Doc{{ID: 0, Text: "completely different words"}}
	fs2 := newFS()
	if _, err := Build(fs2, "tiny", &SliceDocs{Docs: docs}, BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		t.Fatal(err)
	}
	// saveLexicon/saveDocMeta replace existing files on the same fs.
	if err := saveLexicon(fs2, "tiny", lexiconOf(t, fs2, "tiny")); err != nil {
		t.Fatal(err)
	}
	if err := saveDocMeta(fs2, "tiny", []uint32{3}, 3); err != nil {
		t.Fatal(err)
	}
	lens, total, err := loadDocMeta(fs2, "tiny")
	if err != nil || len(lens) != 1 || total != 3 {
		t.Fatalf("reload = %v, %d, %v", lens, total, err)
	}
}

func lexiconOf(t *testing.T, fs *vfs.FS, name string) *lexicon.Dictionary {
	t.Helper()
	d, err := loadLexicon(fs, name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBTreeBackendFetchMissing(t *testing.T) {
	fs := newFS()
	buildTiny(t, fs, "tiny")
	bt, err := OpenBTreeBackend(fs, "tiny"+suffixBTree)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	if _, err := bt.Fetch(9999999); err == nil {
		t.Fatal("missing record fetched")
	}
	// No-op methods behave.
	bt.Reserve([]uint64{1}).Release()
	if err := bt.DropCaches(); err != nil {
		t.Fatal(err)
	}
	if bt.BufferStats() != nil {
		t.Fatal("btree reported buffer stats")
	}
	if bt.SizeBytes() <= 0 {
		t.Fatal("SizeBytes = 0")
	}
	if err := bt.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsUnknownBackend(t *testing.T) {
	fs := newFS()
	_, err := Build(fs, "x", &SliceDocs{Docs: tinyDocs}, BuildOptions{
		Analyzer: plainAnalyzer(),
		Backends: []BackendKind{BackendKind(42)},
	})
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestEngineAccessorsAndListSize(t *testing.T) {
	fs := newFS()
	buildTiny(t, fs, "tiny")
	e, err := Open(fs, "tiny", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Kind() != BackendMneme || e.Backend() == nil || e.Analyzer() == nil {
		t.Fatal("accessors broken")
	}
	if e.NumDocs() != len(tinyDocs) {
		t.Fatalf("NumDocs = %d", e.NumDocs())
	}
	if e.AvgDocLen() <= 0 {
		t.Fatalf("AvgDocLen = %v", e.AvgDocLen())
	}
	if e.DocLen(0) == 0 || e.DocLen(9999) != 0 {
		t.Fatal("DocLen bounds wrong")
	}
	if n, ok := e.ListSize("information"); !ok || n == 0 {
		t.Fatalf("ListSize = %d, %v", n, ok)
	}
	if _, ok := e.ListSize("zebra"); ok {
		t.Fatal("ListSize hit for absent term")
	}
}
