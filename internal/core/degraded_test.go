package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/mneme"
	"repro/internal/vfs"
)

// rotStore flips one byte every 512 bytes of the store file past the
// header, guaranteeing every persisted segment fails its checksum.
func rotStore(t *testing.T, fs *vfs.FS, name string) {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	size := f.Size()
	f.Close()
	for off := int64(512); off < size; off += 512 {
		if err := fs.FlipByte(name, off, 0x40); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDegradedSearchSurvivesRottenStore rots every segment of a Mneme
// index under two already-open engines: the strict one must abort with
// the checksum error, the WithDegraded one must finish the whole query
// batch with the damage tallied in CorruptRecords and the Snapshot.
func TestDegradedSearchSurvivesRottenStore(t *testing.T) {
	fs := newFS()
	queries := concurrencyCorpus(t, fs, "rot")
	strict, err := Open(fs, "rot", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()
	deg, err := Open(fs, "rot", BackendMneme, WithAnalyzer(plainAnalyzer()), WithDegraded())
	if err != nil {
		t.Fatal(err)
	}
	defer deg.Close()

	// Intact store: both engines agree and count no corruption.
	want, err := strict.Search(queries[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := deg.Search(queries[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "intact store", got, want)
	if c := deg.Counters(); c.CorruptRecords != 0 {
		t.Fatalf("intact store counted %d corrupt records", c.CorruptRecords)
	}

	rotStore(t, fs, "rot"+suffixMneme)

	if _, err := strict.Search("w1 w2 w3", 10); !errors.Is(err, mneme.ErrCorrupt) {
		t.Fatalf("strict search on rotted store: want ErrCorrupt, got %v", err)
	}
	for i, q := range queries {
		if _, err := deg.Search(q, 10); err != nil {
			t.Fatalf("degraded query %d %q: %v", i, q, err)
		}
	}
	c := deg.Counters()
	if c.CorruptRecords == 0 {
		t.Fatal("degraded run over a rotted store counted no corrupt records")
	}
	snap := deg.Snapshot()
	if snap.CorruptRecords != c.CorruptRecords {
		t.Fatalf("snapshot CorruptRecords = %d, counters say %d", snap.CorruptRecords, c.CorruptRecords)
	}
	js, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(js, []byte(`"corrupt_records":`)) {
		t.Fatalf("snapshot JSON lacks corrupt_records: %s", js)
	}
}

// TestDegradedRanksSurvivingTerms injects a single read fault: the
// first term of the query is lost, but the degraded searcher still
// ranks documents from the surviving term.
func TestDegradedRanksSurvivingTerms(t *testing.T) {
	fs := newFS()
	concurrencyCorpus(t, fs, "skip")
	eng, err := Open(fs, "skip", BackendMneme, WithAnalyzer(plainAnalyzer()), WithDegraded())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const query = "#or(w1 w2)"
	want, err := eng.Search(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline query matched nothing")
	}

	// The first disk read after arming the plan is w1's record fetch.
	fs.SetFaultPlan(vfs.NewFaultPlan(1).FailRead(1))
	got, err := eng.Search(query, 10)
	fs.SetFaultPlan(nil)
	if err != nil {
		t.Fatalf("degraded search with injected fault: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("degraded search ranked nothing despite a surviving term")
	}
	if c := eng.Counters(); c.CorruptRecords != 1 {
		t.Fatalf("CorruptRecords = %d, want 1", c.CorruptRecords)
	}

	// With the plan cleared nothing is poisoned: the query recovers.
	again, err := eng.Search(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "after fault cleared", again, want)
}

// TestDegradedAppliesToBTree exercises the same skip logic over the
// B-tree backend, whose page reads surface injected faults.
func TestDegradedAppliesToBTree(t *testing.T) {
	fs := newFS()
	concurrencyCorpus(t, fs, "bt")

	strict, err := Open(fs, "bt", BackendBTree, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()
	fs.SetFaultPlan(vfs.NewFaultPlan(1).FailRead(1))
	_, err = strict.Search("w1", 10)
	fs.SetFaultPlan(nil)
	if !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("strict btree search under read fault: want ErrInjected, got %v", err)
	}

	deg, err := Open(fs, "bt", BackendBTree, WithAnalyzer(plainAnalyzer()), WithDegraded())
	if err != nil {
		t.Fatal(err)
	}
	defer deg.Close()
	fs.SetFaultPlan(vfs.NewFaultPlan(1).FailRead(1))
	_, err = deg.Search("w1", 10)
	fs.SetFaultPlan(nil)
	if err != nil {
		t.Fatalf("degraded btree search under read fault: %v", err)
	}
	if c := deg.Counters(); c.CorruptRecords != 1 {
		t.Fatalf("CorruptRecords = %d, want 1", c.CorruptRecords)
	}
}

// TestDegradedBatchCompletes runs the batch driver over a rotted store:
// no query may fail, and the per-engine tally must cover the batch.
func TestDegradedBatchCompletes(t *testing.T) {
	fs := newFS()
	queries := concurrencyCorpus(t, fs, "degbatch")
	eng, err := Open(fs, "degbatch", BackendMneme, WithAnalyzer(plainAnalyzer()), WithDegraded())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rotStore(t, fs, "degbatch"+suffixMneme)
	res, err := eng.SearchBatch(queries, Parallelism(4), TopK(10))
	if err != nil {
		t.Fatalf("degraded batch: %v", err)
	}
	if len(res) != len(queries) {
		t.Fatalf("batch returned %d result sets, want %d", len(res), len(queries))
	}
	if c := eng.Counters(); c.CorruptRecords == 0 {
		t.Fatal("batch over rotted store counted no corrupt records")
	}
}
