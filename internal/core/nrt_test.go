package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/vfs"
)

// nrtCorpus generates a deterministic document stream over a small
// shared vocabulary, so every prefix has meaningful term overlap for
// multi-term queries.
func nrtCorpus(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	docs := make([]string, n)
	for i := range docs {
		words := make([]string, 3+rng.Intn(10))
		for j := range words {
			words[j] = fmt.Sprintf("w%d", rng.Intn(12))
		}
		docs[i] = strings.Join(words, " ")
	}
	return docs
}

var nrtQueries = []string{
	"w1 w3",
	"#and(w2 w5)",
	"#or(w0 w7 w4)",
	"#wsum(2 w1 1 w6)",
	"#phrase(w2 w3)",
	"w9",
}

// nrtModes is the evaluation matrix the oracle tests sweep.
var nrtModes = []Request{
	{Mode: ModeTAAT, TopK: 10},
	{Mode: ModeDAAT, TopK: 10},
	{Mode: ModeDAAT, TopK: 10, Prune: true},
}

// batchOracle builds docs[0:n] as an ordinary batch collection on a
// fresh file system and returns an opened engine over it — the ground
// truth an NRT view of the same prefix must reproduce.
func batchOracle(t *testing.T, docs []string, kind BackendKind) *Engine {
	t.Helper()
	fs := newFS()
	ds := make([]index.Doc, len(docs))
	for i, text := range docs {
		ds[i] = index.Doc{ID: uint32(i), Text: text}
	}
	if _, err := Build(fs, "oracle", &SliceDocs{Docs: ds}, BuildOptions{
		Analyzer: plainAnalyzer(),
		Backends: []BackendKind{kind},
	}); err != nil {
		t.Fatal(err)
	}
	e, err := Open(fs, "oracle", kind, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// checkAgainstOracle runs the full query×mode matrix on both engines
// and compares rankings: document order must match exactly, scores
// within tol (0 demands bit-equality).
func checkAgainstOracle(t *testing.T, label string, nrt *NRTEngine, oracle *Engine, tol float64) {
	t.Helper()
	for _, q := range nrtQueries {
		for _, mode := range nrtModes {
			req := mode
			req.Query = q
			want, err := oracle.Run(nil, req)
			if err != nil {
				t.Fatalf("%s: oracle %q/%s: %v", label, q, mode.Mode, err)
			}
			got, err := nrt.Run(nil, req)
			if err != nil {
				t.Fatalf("%s: nrt %q/%s: %v", label, q, mode.Mode, err)
			}
			if len(got.Results) != len(want.Results) {
				t.Fatalf("%s: %q/%s prune=%v: nrt %d results, oracle %d",
					label, q, mode.Mode, mode.Prune, len(got.Results), len(want.Results))
			}
			for i := range want.Results {
				g, w := got.Results[i], want.Results[i]
				if g.Doc != w.Doc || math.Abs(g.Score-w.Score) > tol {
					t.Fatalf("%s: %q/%s prune=%v rank %d: nrt (%d, %.17g) oracle (%d, %.17g)",
						label, q, mode.Mode, mode.Prune, i, g.Doc, g.Score, w.Doc, w.Score)
				}
			}
			if tol == 0 {
				// Byte-identical under the wire encoding, not just ==.
				gb, _ := json.Marshal(got.Results)
				wb, _ := json.Marshal(want.Results)
				if !bytes.Equal(gb, wb) {
					t.Fatalf("%s: %q/%s: serialized rankings differ:\nnrt    %s\noracle %s",
						label, q, mode.Mode, gb, wb)
				}
			}
		}
	}
}

func TestNRTIngestSearchFlushCompactRoundTrip(t *testing.T) {
	docs := nrtCorpus(7, 24)
	for _, kind := range []BackendKind{BackendBTree, BackendMneme} {
		t.Run(kind.String(), func(t *testing.T) {
			fs := newFS()
			e, err := OpenNRT(fs, "col", kind, NRTConfig{}, WithAnalyzer(plainAnalyzer()))
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()

			// Memtable-only: searchable immediately after Ingest acks.
			if _, err := e.Ingest(docs[:8]...); err != nil {
				t.Fatal(err)
			}
			if e.NumDocs() != 8 {
				t.Fatalf("NumDocs = %d, want 8", e.NumDocs())
			}
			oracle := batchOracle(t, docs[:8], kind)
			checkAgainstOracle(t, "memtable", e, oracle, 0)
			oracle.Close()

			// Flush, ingest more: segment + memtable merge.
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Ingest(docs[8:16]...); err != nil {
				t.Fatal(err)
			}
			oracle = batchOracle(t, docs[:16], kind)
			checkAgainstOracle(t, "segment+memtable", e, oracle, 0)
			oracle.Close()

			// Second flush, then compaction merges the two segments.
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := e.Compact(); err != nil {
				t.Fatal(err)
			}
			snap := e.Snapshot()
			if snap.NRT == nil || len(snap.NRT.Segments) != 1 || snap.NRT.Compactions != 1 {
				t.Fatalf("after compact: %+v", snap.NRT)
			}
			oracle = batchOracle(t, docs[:16], kind)
			checkAgainstOracle(t, "compacted", e, oracle, 0)

			// Reopen: manifest + WAL replay reconstruct the same state,
			// including unflushed memtable docs.
			if _, err := e.Ingest(docs[16:]...); err != nil {
				t.Fatal(err)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := OpenNRT(fs, "col", kind, NRTConfig{}, WithAnalyzer(plainAnalyzer()))
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if re.NumDocs() != len(docs) {
				t.Fatalf("reopened NumDocs = %d, want %d", re.NumDocs(), len(docs))
			}
			oracle.Close()
			oracle = batchOracle(t, docs, kind)
			checkAgainstOracle(t, "reopened", re, oracle, 0)
			oracle.Close()
		})
	}
}

func TestNRTWrapsBaseCollection(t *testing.T) {
	docs := nrtCorpus(11, 20)
	fs := newFS()
	ds := make([]index.Doc, 12)
	for i := range ds {
		ds[i] = index.Doc{ID: uint32(i), Text: docs[i]}
	}
	if _, err := Build(fs, "col", &SliceDocs{Docs: ds}, BuildOptions{
		Analyzer: plainAnalyzer(),
		Backends: []BackendKind{BackendMneme},
	}); err != nil {
		t.Fatal(err)
	}
	e, err := OpenNRT(fs, "col", BackendMneme, NRTConfig{}, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.NumDocs() != 12 {
		t.Fatalf("base-wrapped NumDocs = %d, want 12", e.NumDocs())
	}
	if _, err := e.Ingest(docs[12:]...); err != nil {
		t.Fatal(err)
	}
	oracle := batchOracle(t, docs, BackendMneme)
	defer oracle.Close()
	checkAgainstOracle(t, "base+memtable", e, oracle, 0)

	// Flush + compact must leave the base collection untouched.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if len(snap.NRT.Segments) == 0 || !snap.NRT.Segments[0].BaseCollection {
		t.Fatalf("base collection missing from roster: %+v", snap.NRT.Segments)
	}
	checkAgainstOracle(t, "base+segment", e, oracle, 0)
}

// TestNRTDifferentialOracle is the batch-oracle tier: seeded random
// interleavings of ingest → query → flush → compact, on both backends.
// After every step the NRT view must score identically (1e-9) to a
// batch build of the same document prefix; after the final quiesce the
// serialized rankings must be byte-identical.
func TestNRTDifferentialOracle(t *testing.T) {
	for _, kind := range []BackendKind{BackendBTree, BackendMneme} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", kind, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				docs := nrtCorpus(seed*100, 40)
				fs := newFS()
				e, err := OpenNRT(fs, "col", kind, NRTConfig{}, WithAnalyzer(plainAnalyzer()))
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()

				next := 0
				for step := 0; next < len(docs); step++ {
					n := 1 + rng.Intn(5)
					if next+n > len(docs) {
						n = len(docs) - next
					}
					if _, err := e.Ingest(docs[next : next+n]...); err != nil {
						t.Fatalf("step %d ingest: %v", step, err)
					}
					next += n
					switch rng.Intn(4) {
					case 0:
						if err := e.Flush(); err != nil {
							t.Fatalf("step %d flush: %v", step, err)
						}
					case 1:
						if err := e.Flush(); err != nil {
							t.Fatalf("step %d flush: %v", step, err)
						}
						if err := e.Compact(); err != nil {
							t.Fatalf("step %d compact: %v", step, err)
						}
					}
					oracle := batchOracle(t, docs[:next], kind)
					checkAgainstOracle(t, fmt.Sprintf("step %d (%d docs)", step, next), e, oracle, 1e-9)
					oracle.Close()
				}

				// Quiesce: flush everything, compact to one segment, and
				// demand byte-identical serialized rankings.
				if err := e.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := e.Compact(); err != nil {
					t.Fatal(err)
				}
				oracle := batchOracle(t, docs, kind)
				defer oracle.Close()
				checkAgainstOracle(t, "quiesced", e, oracle, 0)
			})
		}
	}
}

// nrtCrashScript drives a fixed ingest/flush/compact sequence and
// returns how many documents had been acknowledged when the first
// error (if any) struck. Steps after an error are skipped — the file
// system is crash-frozen at that point.
func nrtCrashScript(e *NRTEngine, docs []string) (acked int, err error) {
	steps := []func() error{
		func() error { _, err := e.Ingest(docs[0:4]...); return err },
		func() error { return e.Flush() },
		func() error { _, err := e.Ingest(docs[4:8]...); return err },
		func() error { return e.Flush() },
		func() error { _, err := e.Ingest(docs[8:12]...); return err },
		func() error { return e.Compact() },
	}
	ackAfter := []int{4, 4, 8, 8, 12, 12}
	for i, step := range steps {
		if err := step(); err != nil {
			return acked, err
		}
		acked = ackAfter[i]
	}
	return acked, nil
}

// TestNRTCrashPointSweep simulates a crash at every write and every
// sync ordinal of a full ingest → flush → ingest → flush → ingest →
// compact sequence, reboots from the frozen disk image, and proves
// recovery lands on a clean document prefix with zero acknowledged
// loss: the reopened collection holds at least every acked document,
// and its rankings match a batch build of exactly the documents it
// recovered.
func TestNRTCrashPointSweep(t *testing.T) {
	docs := nrtCorpus(23, 12)
	for _, kind := range []BackendKind{BackendBTree, BackendMneme} {
		t.Run(kind.String(), func(t *testing.T) {
			// Ground truth for every possible recovery point.
			oracles := make([]*Engine, len(docs)+1)
			for n := 1; n <= len(docs); n++ {
				oracles[n] = batchOracle(t, docs[:n], kind)
				defer oracles[n].Close()
			}

			// Probe run: count the operations the whole script performs.
			fs := newFS()
			e, err := OpenNRT(fs, "col", kind, NRTConfig{}, WithAnalyzer(plainAnalyzer()))
			if err != nil {
				t.Fatal(err)
			}
			probe := vfs.NewFaultPlan(1)
			fs.SetFaultPlan(probe)
			if _, err := nrtCrashScript(e, docs); err != nil {
				t.Fatalf("probe run: %v", err)
			}
			fs.SetFaultPlan(nil)
			e.Close()
			_, writes, syncs := probe.Counts()
			if writes < 10 || syncs < 6 {
				t.Fatalf("probe made %d writes, %d syncs; script too small to sweep", writes, syncs)
			}

			crashAt := func(t *testing.T, label string, plan *vfs.FaultPlan) {
				t.Helper()
				fs := newFS()
				e, err := OpenNRT(fs, "col", kind, NRTConfig{}, WithAnalyzer(plainAnalyzer()))
				if err != nil {
					t.Fatal(err)
				}
				fs.SetFaultPlan(plan)
				acked, serr := nrtCrashScript(e, docs)
				if serr != nil && !errors.Is(serr, vfs.ErrInjected) {
					t.Fatalf("%s: script under crash plan: want injected fault, got %v", label, serr)
				}
				if serr == nil && acked != len(docs) {
					// The only way the script survives its crash point is
					// when the fault lands in an op whose failure the
					// engine tolerates by design (e.g. closing a retired
					// segment after its replacement committed) — and then
					// every step must have completed.
					t.Fatalf("%s: script absorbed the fault but only acked %d/%d docs", label, acked, len(docs))
				}
				// Reboot from the frozen image.
				img := fs.Clone(vfs.Options{})
				e.Close()
				re, err := OpenNRT(img, "col", kind, NRTConfig{}, WithAnalyzer(plainAnalyzer()))
				if err != nil {
					t.Fatalf("%s: reopen after crash (acked %d): %v", label, acked, err)
				}
				defer re.Close()
				got := re.NumDocs()
				if got < acked {
					t.Fatalf("%s: acknowledged-document loss: recovered %d docs, %d were acked", label, got, acked)
				}
				if got > len(docs) {
					t.Fatalf("%s: recovered %d docs from a %d-doc script", label, got, len(docs))
				}
				// Recovery must be a clean prefix state: rankings match a
				// batch build of exactly the recovered documents.
				if got > 0 {
					checkAgainstOracle(t, fmt.Sprintf("%s recovered@%d", label, got), re, oracles[got], 1e-9)
				}
				// And the recovered engine must remain writable.
				if _, err := re.Ingest("w1 w2 postrecovery"); err != nil {
					t.Fatalf("%s: ingest after recovery: %v", label, err)
				}
			}

			for k := int64(1); k <= writes; k++ {
				crashAt(t, fmt.Sprintf("write%d", k), vfs.NewFaultPlan(1).FailWrite(k).WithTear().WithCrash())
			}
			for k := int64(1); k <= syncs; k++ {
				crashAt(t, fmt.Sprintf("sync%d", k), vfs.NewFaultPlan(1).FailSync(k).WithCrash())
			}
		})
	}
}

// TestNRTIngestFailureAcksNothing verifies batch atomicity at the ack
// boundary: an ingest that fails mid-append publishes none of its
// documents and the engine keeps serving the prior state.
func TestNRTIngestFailureAcksNothing(t *testing.T) {
	docs := nrtCorpus(31, 8)
	fs := newFS()
	e, err := OpenNRT(fs, "col", BackendMneme, NRTConfig{}, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Ingest(docs[:4]...); err != nil {
		t.Fatal(err)
	}
	fs.SetFaultPlan(vfs.NewFaultPlan(1).FailSync(1).Once())
	if _, err := e.Ingest(docs[4:]...); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	fs.SetFaultPlan(nil)
	if e.NumDocs() != 4 {
		t.Fatalf("failed batch leaked: NumDocs = %d, want 4", e.NumDocs())
	}
	oracle := batchOracle(t, docs[:4], BackendMneme)
	defer oracle.Close()
	checkAgainstOracle(t, "after failed batch", e, oracle, 0)
	// The rewound WAL accepts the retry.
	if _, err := e.Ingest(docs[4:]...); err != nil {
		t.Fatalf("retry after rewind: %v", err)
	}
	if e.NumDocs() != 8 {
		t.Fatalf("NumDocs after retry = %d, want 8", e.NumDocs())
	}
}

// TestNRTCloseMidFlushNoLeak closes the engine while a background
// flush loop and a query load are running, and requires every
// goroutine to drain.
func TestNRTCloseMidFlushNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	docs := nrtCorpus(41, 60)
	fs := newFS()
	e, err := OpenNRT(fs, "col", BackendMneme,
		NRTConfig{FlushEvery: time.Millisecond, CompactSegments: 2},
		WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < len(docs); i++ {
			if _, err := e.Ingest(docs[i]); err != nil {
				return // engine closed underneath us — expected
			}
			if i%7 == 0 {
				_, _ = e.Run(nil, Request{Query: "w1 w3", TopK: 5, Mode: ModeDAAT})
			}
		}
	}()
	time.Sleep(5 * time.Millisecond) // let flushes interleave with ingest
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after Close: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestNRTWalTruncationSurfaced: a torn WAL tail discovered at open is
// not silent — the truncated frame/byte counts land in the snapshot's
// NRT block and in the metrics registry.
func TestNRTWalTruncationSurfaced(t *testing.T) {
	docs := nrtCorpus(5, 12)
	fs := newFS()
	e, err := OpenNRT(fs, "col", BackendMneme, NRTConfig{}, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(docs...); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last appended frame: chop 2 bytes off the WAL.
	var walName string
	for _, name := range fs.Names() {
		if strings.HasPrefix(name, "col.wal.") {
			walName = name
		}
	}
	if walName == "" {
		t.Fatal("no WAL file found")
	}
	f, err := fs.Open(walName)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(f.Size() - 2); err != nil {
		t.Fatal(err)
	}

	re, err := OpenNRT(fs, "col", BackendMneme, NRTConfig{}, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumDocs() != len(docs)-1 {
		t.Fatalf("reopened NumDocs = %d, want %d (torn last ack discarded)", re.NumDocs(), len(docs)-1)
	}
	snap := re.Snapshot()
	if snap.NRT == nil || snap.NRT.WalTruncFrames != 1 || snap.NRT.WalTruncBytes < 1 {
		t.Fatalf("snapshot does not surface the truncation: %+v", snap.NRT)
	}
	if got := re.Metrics().Counter("wal_truncated_frames_total").Value(); got != 1 {
		t.Fatalf("wal_truncated_frames_total = %d, want 1", got)
	}
	if got := re.Metrics().Counter("wal_truncated_bytes_total").Value(); got != int64(snap.NRT.WalTruncBytes) {
		t.Fatalf("wal_truncated_bytes_total = %d, want %d", got, snap.NRT.WalTruncBytes)
	}

	// A clean reopen reports zero again.
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenNRT(fs, "col", BackendMneme, NRTConfig{}, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if snap := re2.Snapshot(); snap.NRT.WalTruncFrames != 0 || snap.NRT.WalTruncBytes != 0 {
		t.Fatalf("clean reopen still reports truncation: %+v", snap.NRT)
	}
}
