package core

import (
	"fmt"
	"sort"

	"repro/internal/postings"
)

// Incremental modification. The paper (§2) identifies inverted-list
// update as the hard case for the custom keyed file — inserting entries
// into the middle of very large sorted objects — and notes that INQUERY
// therefore re-indexes the whole collection. Mneme's object model makes
// single-document addition and deletion practical: records are objects
// whose identifiers survive relocation and whose pool can change as the
// list crosses a size-class boundary. These operations are available
// only on the Mneme backend; the B-tree backend returns ErrNoUpdate,
// mirroring the original system.

// AddDocument indexes one new document into the open collection,
// updating every touched inverted list in place. It returns the new
// document's identifier. Call SaveMeta to persist dictionary and
// document-table changes.
func (e *Engine) AddDocument(text string) (uint32, error) {
	if e.kind != BackendMneme {
		return 0, ErrNoUpdate
	}
	// Invalidate even on a failed add: the lists touched before the
	// error are already rewritten.
	defer e.InvalidateCaches()
	docID := uint32(len(e.docLens))
	toks := e.an.Tokens(text)

	// Group positions per term.
	perTerm := make(map[string][]uint32)
	for _, t := range toks {
		perTerm[t.Term] = append(perTerm[t.Term], t.Pos)
	}
	// Deterministic application order.
	terms := make([]string, 0, len(perTerm))
	for t := range perTerm {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	for _, term := range terms {
		positions := perTerm[term]
		add := postings.Posting{Doc: docID, Positions: positions}
		entry := e.dict.Intern(term)
		var rec []byte
		if ref, ok := e.refOf(entry); ok {
			old, err := e.backend.Fetch(ref)
			if err != nil {
				return 0, fmt.Errorf("core: add document: fetch %q: %w", term, err)
			}
			rec, err = postings.Merge(old, []postings.Posting{add})
			if err != nil {
				return 0, err
			}
			nref, err := e.backend.Update(ref, rec)
			if err != nil {
				return 0, err
			}
			entry.Ref = nref
		} else {
			var err error
			rec, err = postings.Encode([]postings.Posting{add})
			if err != nil {
				return 0, fmt.Errorf("core: add document: encode %q: %w", term, err)
			}
			nref, err := e.backend.Store(rec)
			if err != nil {
				return 0, err
			}
			entry.Ref = nref
		}
		entry.CTF += uint64(len(positions))
		entry.DF++
		entry.ListBytes = uint32(len(rec))
	}
	e.docLens = append(e.docLens, uint32(len(toks)))
	e.total += int64(len(toks))
	return docID, nil
}

// DeleteDocument removes a document's entries from every inverted list
// it appears in. Because the system keeps no forward index (neither did
// INQUERY), the caller must supply the document's original text. Lists
// emptied by the deletion are kept as header-only records.
func (e *Engine) DeleteDocument(docID uint32, text string) error {
	if e.kind != BackendMneme {
		return ErrNoUpdate
	}
	if int(docID) >= len(e.docLens) {
		return fmt.Errorf("core: delete document %d: no such document", docID)
	}
	defer e.InvalidateCaches()
	toks := e.an.Tokens(text)
	perTerm := make(map[string]int)
	for _, t := range toks {
		perTerm[t.Term]++
	}
	terms := make([]string, 0, len(perTerm))
	for t := range perTerm {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	for _, term := range terms {
		entry, ok := e.dict.Lookup(term)
		if !ok {
			continue
		}
		ref, ok := e.refOf(entry)
		if !ok {
			continue
		}
		old, err := e.backend.Fetch(ref)
		if err != nil {
			return fmt.Errorf("core: delete document: fetch %q: %w", term, err)
		}
		// Confirm the document is actually in the list before adjusting
		// statistics (the supplied text may not match what was indexed).
		present := false
		var tf uint64
		r := postings.Iter(old)
		for {
			p, ok := r.Next()
			if !ok {
				break
			}
			if p.Doc == docID {
				present = true
				tf = uint64(p.TF())
				break
			}
		}
		if err := r.Err(); err != nil {
			return err
		}
		if !present {
			continue
		}
		rec, err := postings.Delete(old, []uint32{docID})
		if err != nil {
			return err
		}
		nref, err := e.backend.Update(ref, rec)
		if err != nil {
			return err
		}
		entry.Ref = nref
		entry.CTF -= tf
		entry.DF--
		entry.ListBytes = uint32(len(rec))
	}
	e.total -= int64(e.docLens[docID])
	e.docLens[docID] = 0
	return nil
}
