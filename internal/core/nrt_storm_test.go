package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/vfs"
)

// TestNRTStormIngestQueryFaults is the NRT chaos tier: concurrent
// ingest, flush, compaction, and queries under seeded fault schedules,
// on alternating backends. Invariants:
//
//   - every query either succeeds or fails with a typed shed/deadline
//     error (injected read faults are absorbed by degraded mode);
//   - every Ingest either acknowledges its whole batch or none of it;
//   - after the faults stop and the engine quiesces (flush + compact),
//     rankings are byte-identical to a batch build of exactly the
//     acknowledged documents.
//
// SOAK_ROUNDS scales the schedule for `make soak`; the default keeps
// the unit suite fast. The test is race-clean and runs under -race in
// the concurrency tier.
func TestNRTStormIngestQueryFaults(t *testing.T) {
	rounds := soakRounds()
	docs := nrtCorpus(101, 80)
	for round := 0; round < rounds; round++ {
		round := round
		kind := BackendMneme
		if round%2 == 1 {
			kind = BackendBTree
		}
		t.Run(fmt.Sprintf("round%d_%s", round, kind), func(t *testing.T) {
			fs := newFS()
			e, err := OpenNRT(fs, "storm", kind,
				NRTConfig{FlushDocs: 10, CompactSegments: 3},
				WithAnalyzer(plainAnalyzer()),
				WithDegraded(),
				WithRetry(3),
				WithMaxInFlight(8, time.Second))
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()

			seed := int64(round + 1)
			var plan *vfs.FaultPlan
			switch round % 3 {
			case 0: // background noise across all op kinds
				plan = vfs.NewFaultPlan(seed).WithProbability(0.01 + 0.01*float64(round%4))
			case 1: // periodic hard read faults
				plan = vfs.NewFaultPlan(seed).FailReadEvery(int64(5 + round%11))
			case 2: // clean round: pure concurrency
			}
			fs.SetFaultPlan(plan)

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						req := nrtModes[(g+i)%len(nrtModes)]
						req.Query = nrtQueries[i%len(nrtQueries)]
						if i%9 == 3 {
							req.Deadline = time.Microsecond
						}
						if _, err := e.Run(nil, req); err != nil &&
							!errors.Is(err, resilience.ErrShed) &&
							!errors.Is(err, resilience.ErrDeadline) {
							t.Errorf("worker %d query %d: untyped error %v", g, i, err)
							return
						}
					}
				}(g)
			}

			// Ingest the corpus in batches while the query storm runs.
			// Under the probabilistic schedule a WAL write may be hit:
			// then the whole batch is unacknowledged and skipped.
			var acked []string
			for i := 0; i < len(docs); i += 4 {
				hi := min(i+4, len(docs))
				first, err := e.Ingest(docs[i:hi]...)
				if err != nil {
					if !errors.Is(err, vfs.ErrInjected) {
						t.Errorf("ingest batch %d: unexpected error %v", i/4, err)
						break
					}
					continue
				}
				if int(first) != len(acked) {
					t.Errorf("ingest batch %d: first id %d, %d docs acked before it", i/4, first, len(acked))
					break
				}
				acked = append(acked, docs[i:hi]...)
			}
			close(stop)
			wg.Wait()
			fs.SetFaultPlan(nil)
			if t.Failed() {
				t.FailNow()
			}

			if got := e.NumDocs(); got != len(acked) {
				t.Fatalf("NumDocs = %d, want %d acked", got, len(acked))
			}
			if len(acked) == 0 {
				return
			}
			// Quiesce and verify against the batch oracle.
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := e.Compact(); err != nil {
				t.Fatal(err)
			}
			oracle := batchOracle(t, acked, kind)
			defer oracle.Close()
			checkAgainstOracle(t, "quiesced", e, oracle, 0)
		})
	}
}
