package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/inference"
	"repro/internal/lexicon"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

// Counters accumulates the retrieval engine's work, feeding the paper's
// metrics: Lookups is the denominator of Table 5's "A"; Postings drives
// the user-CPU estimate; Queries counts query evaluations.
type Counters struct {
	Lookups      int64 `json:"lookups"`       // inverted-list record lookups
	Postings     int64 `json:"postings"`      // posting entries processed
	Queries      int64 `json:"queries"`       // queries evaluated
	BytesFetched int64 `json:"bytes_fetched"` // record bytes fetched from the backend
	// CorruptRecords counts inverted-list records skipped because their
	// storage failed checksum or I/O on fetch — including fast-fail
	// rejections from an open circuit breaker. Always zero unless the
	// engine was opened WithDegraded; without it corruption aborts the
	// query instead of being counted.
	CorruptRecords int64 `json:"corrupt_records"`
	// RetriedReads counts transient record fault-in failures that a
	// retry recovered (the caller never saw them). Always zero unless
	// the engine was opened WithRetry. Engine-level: individual
	// searchers report zero here; Engine.Counters fills it in.
	RetriedReads int64 `json:"retried_reads"`
	// DeadlineHits counts queries cut short by their context deadline:
	// the query returned partial results tagged resilience.ErrDeadline.
	DeadlineHits int64 `json:"deadline_hits"`
	// Shed counts queries rejected by admission control (WithMaxInFlight)
	// with resilience.ErrShed. Shed queries are not counted in Queries —
	// they were never evaluated.
	Shed int64 `json:"shed"`
	// PostingsSkipped counts posting entries an Advance-capable iterator
	// passed over without surfacing them to the evaluator — the postings
	// MaxScore pruning never scored. Disjoint from Postings.
	PostingsSkipped int64 `json:"postings_skipped"`
	// BlocksSkipped counts block-format (v2) record blocks whose bodies
	// were never decoded because Advance jumped past them.
	BlocksSkipped int64 `json:"blocks_skipped"`
	// ChunksSkipped counts storage chunks of indexed chunked records
	// that were never faulted in — skipped blocks translated into
	// avoided I/O.
	ChunksSkipped int64 `json:"chunks_skipped"`
	// ResultCacheHits counts queries answered entirely from the
	// query-result cache (WithResultCache): the query is counted in
	// Queries but performed no lookups, fetches, or posting work.
	ResultCacheHits int64 `json:"result_cache_hits,omitempty"`
	// BlockCacheHits / BlockCacheMisses count decoded-postings block
	// cache probes (WithBlockCache). A hit serves a pre-decoded block
	// (or, on the TAAT path, a whole record) without touching the
	// backend: hit-served records are not counted in Lookups or
	// BytesFetched, which is exactly the avoided work.
	BlockCacheHits   int64 `json:"block_cache_hits,omitempty"`
	BlockCacheMisses int64 `json:"block_cache_misses,omitempty"`
}

// Add returns the field-wise sum of c and d.
func (c Counters) Add(d Counters) Counters {
	return Counters{
		Lookups:         c.Lookups + d.Lookups,
		Postings:        c.Postings + d.Postings,
		Queries:         c.Queries + d.Queries,
		BytesFetched:    c.BytesFetched + d.BytesFetched,
		CorruptRecords:  c.CorruptRecords + d.CorruptRecords,
		RetriedReads:    c.RetriedReads + d.RetriedReads,
		DeadlineHits:    c.DeadlineHits + d.DeadlineHits,
		Shed:            c.Shed + d.Shed,
		PostingsSkipped: c.PostingsSkipped + d.PostingsSkipped,
		BlocksSkipped:   c.BlocksSkipped + d.BlocksSkipped,
		ChunksSkipped:   c.ChunksSkipped + d.ChunksSkipped,

		ResultCacheHits:  c.ResultCacheHits + d.ResultCacheHits,
		BlockCacheHits:   c.BlockCacheHits + d.BlockCacheHits,
		BlockCacheMisses: c.BlockCacheMisses + d.BlockCacheMisses,
	}
}

// Sub returns the field-wise difference c - d.
func (c Counters) Sub(d Counters) Counters {
	return Counters{
		Lookups:         c.Lookups - d.Lookups,
		Postings:        c.Postings - d.Postings,
		Queries:         c.Queries - d.Queries,
		BytesFetched:    c.BytesFetched - d.BytesFetched,
		CorruptRecords:  c.CorruptRecords - d.CorruptRecords,
		RetriedReads:    c.RetriedReads - d.RetriedReads,
		DeadlineHits:    c.DeadlineHits - d.DeadlineHits,
		Shed:            c.Shed - d.Shed,
		PostingsSkipped: c.PostingsSkipped - d.PostingsSkipped,
		BlocksSkipped:   c.BlocksSkipped - d.BlocksSkipped,
		ChunksSkipped:   c.ChunksSkipped - d.ChunksSkipped,

		ResultCacheHits:  c.ResultCacheHits - d.ResultCacheHits,
		BlockCacheHits:   c.BlockCacheHits - d.BlockCacheHits,
		BlockCacheMisses: c.BlockCacheMisses - d.BlockCacheMisses,
	}
}

// atomicCounters is the engine-level aggregate of all searchers' work.
// RetriedReads has no slot: retries are counted engine-wide by the
// shared resilience.Retry, not per searcher.
type atomicCounters struct {
	lookups         atomic.Int64
	postings        atomic.Int64
	queries         atomic.Int64
	bytesFetched    atomic.Int64
	corruptRecords  atomic.Int64
	deadlineHits    atomic.Int64
	shed            atomic.Int64
	postingsSkipped atomic.Int64
	blocksSkipped   atomic.Int64
	chunksSkipped   atomic.Int64
	resultCacheHits atomic.Int64
	blockCacheHits  atomic.Int64
	blockCacheMiss  atomic.Int64
}

func (a *atomicCounters) add(d Counters) {
	a.lookups.Add(d.Lookups)
	a.postings.Add(d.Postings)
	a.queries.Add(d.Queries)
	a.bytesFetched.Add(d.BytesFetched)
	a.corruptRecords.Add(d.CorruptRecords)
	a.deadlineHits.Add(d.DeadlineHits)
	a.shed.Add(d.Shed)
	a.postingsSkipped.Add(d.PostingsSkipped)
	a.blocksSkipped.Add(d.BlocksSkipped)
	a.chunksSkipped.Add(d.ChunksSkipped)
	a.resultCacheHits.Add(d.ResultCacheHits)
	a.blockCacheHits.Add(d.BlockCacheHits)
	a.blockCacheMiss.Add(d.BlockCacheMisses)
}

func (a *atomicCounters) snapshot() Counters {
	return Counters{
		Lookups:         a.lookups.Load(),
		Postings:        a.postings.Load(),
		Queries:         a.queries.Load(),
		BytesFetched:    a.bytesFetched.Load(),
		CorruptRecords:  a.corruptRecords.Load(),
		DeadlineHits:    a.deadlineHits.Load(),
		Shed:            a.shed.Load(),
		PostingsSkipped: a.postingsSkipped.Load(),
		BlocksSkipped:   a.blocksSkipped.Load(),
		ChunksSkipped:   a.chunksSkipped.Load(),

		ResultCacheHits:  a.resultCacheHits.Load(),
		BlockCacheHits:   a.blockCacheHits.Load(),
		BlockCacheMisses: a.blockCacheMiss.Load(),
	}
}

func (a *atomicCounters) reset() {
	a.lookups.Store(0)
	a.postings.Store(0)
	a.queries.Store(0)
	a.bytesFetched.Store(0)
	a.corruptRecords.Store(0)
	a.deadlineHits.Store(0)
	a.shed.Store(0)
	a.postingsSkipped.Store(0)
	a.blocksSkipped.Store(0)
	a.chunksSkipped.Store(0)
	a.resultCacheHits.Store(0)
	a.blockCacheHits.Store(0)
	a.blockCacheMiss.Store(0)
}

// engineMetrics holds the engine's metrics registry plus cached handles
// into it, so the per-lookup and per-query paths pay only the atomic
// adds — never a registry map lookup.
type engineMetrics struct {
	reg *obs.Registry

	queries      *obs.Counter
	lookups      *obs.Counter
	postings     *obs.Counter
	bytes        *obs.Counter
	corrupt      *obs.Counter
	retried      *obs.Counter
	deadline     *obs.Counter
	shed         *obs.Counter
	postSkipped  *obs.Counter
	blockSkipped *obs.Counter
	chunkSkipped *obs.Counter
	resCacheHit  *obs.Counter
	blkCacheHit  *obs.Counter
	blkCacheMiss *obs.Counter

	fetchBytes    *obs.Histogram // bytes per inverted-list record fetch
	queryLookups  *obs.Histogram // record lookups per query
	queryPostings *obs.Histogram // posting entries per query
	gateWait      *obs.Histogram // ns queued before admission (gate only)
}

func newEngineMetrics() *engineMetrics {
	reg := obs.NewRegistry()
	return &engineMetrics{
		reg:          reg,
		queries:      reg.Counter("queries_total"),
		lookups:      reg.Counter("lookups_total"),
		postings:     reg.Counter("postings_total"),
		bytes:        reg.Counter("bytes_fetched_total"),
		corrupt:      reg.Counter("corrupt_records_total"),
		retried:      reg.Counter("retried_reads_total"),
		deadline:     reg.Counter("deadline_hits_total"),
		shed:         reg.Counter("shed_total"),
		postSkipped:  reg.Counter("postings_skipped_total"),
		blockSkipped: reg.Counter("blocks_skipped_total"),
		chunkSkipped: reg.Counter("chunks_skipped_total"),
		resCacheHit:  reg.Counter("result_cache_hits_total"),
		blkCacheHit:  reg.Counter("block_cache_hits_total"),
		blkCacheMiss: reg.Counter("block_cache_misses_total"),

		fetchBytes:    reg.Histogram("fetch_bytes", obs.ExpBuckets(16, 4, 10)),
		queryLookups:  reg.Histogram("query_lookups", obs.ExpBuckets(1, 2, 10)),
		queryPostings: reg.Histogram("query_postings", obs.ExpBuckets(4, 4, 10)),
		gateWait:      reg.Histogram("gate_wait_ns", obs.ExpBuckets(1024, 4, 12)),
	}
}

// observeQuery folds one searcher flush delta into the metrics. The
// distributions are of deterministic quantities (counts and bytes, not
// wall-clock), so snapshots of identical runs are identical. The one
// exception is gate_wait_ns, which is fed only when admission control
// (WithMaxInFlight) is on — engines without a gate never observe it.
func (m *engineMetrics) observeQuery(d Counters) {
	m.queries.Add(d.Queries)
	m.lookups.Add(d.Lookups)
	m.postings.Add(d.Postings)
	m.bytes.Add(d.BytesFetched)
	m.corrupt.Add(d.CorruptRecords)
	m.deadline.Add(d.DeadlineHits)
	m.shed.Add(d.Shed)
	m.postSkipped.Add(d.PostingsSkipped)
	m.blockSkipped.Add(d.BlocksSkipped)
	m.chunkSkipped.Add(d.ChunksSkipped)
	m.resCacheHit.Add(d.ResultCacheHits)
	m.blkCacheHit.Add(d.BlockCacheHits)
	m.blkCacheMiss.Add(d.BlockCacheMisses)
	if d.Queries > 0 {
		m.queryLookups.Observe(d.Lookups)
		m.queryPostings.Observe(d.Postings)
	}
}

// Engine is one opened collection + backend pair: INQUERY's query
// processor over an inverted file managed by either storage subsystem.
//
// The engine is an immutable, goroutine-safe handle: the dictionary,
// document metadata, and backend are shared read structures, and all
// per-query mutable state lives in a Searcher (see Acquire). Engine
// counters are the atomic aggregate of every searcher's work, so
// concurrent and serial runs reconcile to the same totals. Search and
// SearchDAAT acquire an implicit per-call searcher and remain safe to
// call from many goroutines.
//
// Index mutation (AddDocument, DeleteDocument, SaveMeta) is the
// exception: it must not run concurrently with searches.
type Engine struct {
	fs      *vfs.FS
	name    string
	kind    BackendKind
	backend Backend
	dict    *lexicon.Dictionary
	an      *textproc.Analyzer
	docLens []uint32
	total   int64
	opts    engineOptions

	agg atomicCounters
	met *engineMetrics

	// Hot-path caches, nil unless configured (WithBlockCache /
	// WithResultCache — or, for blocks, an NRT-shared instance). gen is
	// the engine's current cache generation: block-cache keys embed it,
	// so InvalidateCaches orphans every cached block with one store.
	blocks  *blockCache
	results *resultCache
	gen     atomic.Uint64

	// Resilience state, all nil/zero unless the corresponding options
	// were given — the default query path costs only nil checks.
	gate        *resilience.Gate    // admission control (WithMaxInFlight)
	retry       *resilience.Retry   // shared transient-fault retry budget (WithRetry)
	treeBreaker *resilience.Breaker // the B-tree file's breaker (WithBreaker)
	retriedBase int64               // retry count at last ResetCounters

	mu        sync.Mutex // guards accessLog and termUse
	accessLog []uint32
	termUse   map[string]int64
}

// Open loads a collection with the chosen backend, configured by
// functional options: Open(fs, "CACM", BackendMneme, WithPlan(p)).
func Open(fs *vfs.FS, name string, kind BackendKind, opts ...Option) (*Engine, error) {
	var opt engineOptions
	for _, o := range opts {
		o(&opt)
	}
	dict, err := loadLexicon(fs, name)
	if err != nil {
		return nil, err
	}
	lens, total, err := loadDocMeta(fs, name)
	if err != nil {
		return nil, err
	}
	var backend Backend
	switch kind {
	case BackendBTree:
		backend, err = OpenBTreeBackend(fs, name+suffixBTree)
	case BackendMneme:
		backend, err = OpenMnemeBackend(fs, name+suffixMneme, opt.Plan, opt.ChunkLargeLists)
	default:
		err = fmt.Errorf("core: unknown backend %d", kind)
	}
	if err != nil {
		return nil, err
	}
	an := opt.Analyzer
	if an == nil {
		an = textproc.NewAnalyzer()
	}
	e := &Engine{
		fs:      fs,
		name:    name,
		kind:    kind,
		backend: backend,
		dict:    dict,
		an:      an,
		docLens: lens,
		total:   total,
		opts:    opt,
		met:     newEngineMetrics(),
	}
	if opt.TrackTermUse {
		e.termUse = make(map[string]int64)
	}
	switch {
	case opt.sharedBlocks != nil:
		e.blocks = opt.sharedBlocks
	case opt.BlockCacheMB > 0:
		e.blocks = newBlockCache(int64(opt.BlockCacheMB) << 20)
	}
	if opt.ResultCacheEntries > 0 {
		e.results = newResultCache(opt.ResultCacheEntries)
	}
	e.gen.Store(nextCacheGen())
	e.initResilience()
	return e, nil
}

// Close closes the backend. Dictionary and document-table changes made
// by updates must be saved with SaveMeta first.
func (e *Engine) Close() error { return e.backend.Close() }

// Backend exposes the storage backend.
func (e *Engine) Backend() Backend { return e.backend }

// Kind reports which backend the engine runs on.
func (e *Engine) Kind() BackendKind { return e.kind }

// FS exposes the file system the engine's index files live on (the
// shard coordinator deduplicates I/O stats across co-resident shards
// through it).
func (e *Engine) FS() *vfs.FS { return e.fs }

// Dictionary exposes the term dictionary.
func (e *Engine) Dictionary() *lexicon.Dictionary { return e.dict }

// Analyzer exposes the text analyzer.
func (e *Engine) Analyzer() *textproc.Analyzer { return e.an }

// Counters returns a snapshot of the engine's aggregate work counters:
// the sum over every searcher's completed calls, plus the engine-wide
// retry recovery count.
func (e *Engine) Counters() Counters {
	c := e.agg.snapshot()
	if e.retry != nil {
		c.RetriedReads = e.retry.Retries() - e.retriedBase
	}
	return c
}

// Metrics exposes the engine's metrics registry (always on; populated
// with deterministic distributions by every search).
func (e *Engine) Metrics() *obs.Registry { return e.met.reg }

// ResetCounters zeroes work counters, the metrics registry, the access
// log, and term-use counts. It must not run concurrently with searches.
func (e *Engine) ResetCounters() {
	e.agg.reset()
	e.met.reg.Reset()
	if e.retry != nil {
		e.retriedBase = e.retry.Retries()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.accessLog = nil
	if e.termUse != nil {
		e.termUse = make(map[string]int64)
	}
}

// AccessLog returns the sizes (bytes) of the inverted lists fetched
// since the last reset, in access order. Empty unless WithAccessLog.
// Under concurrency the order interleaves per-query flushes.
func (e *Engine) AccessLog() []uint32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]uint32(nil), e.accessLog...)
}

// TermUse returns per-term lookup counts since the last reset. Empty
// unless WithTermUse.
func (e *Engine) TermUse() map[string]int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int64, len(e.termUse))
	for t, n := range e.termUse {
		out[t] = n
	}
	return out
}

// refOf maps a dictionary entry to the backend's record handle: the
// term id keys the B-tree; the stored Mneme object identifier locates
// the object.
func (e *Engine) refOf(entry *lexicon.Entry) (uint64, bool) {
	switch e.kind {
	case BackendBTree:
		return uint64(entry.ID), entry.DF > 0
	default:
		return entry.Ref, entry.Ref != 0
	}
}

// normalizeQuery parses and normalizes a query string against the
// engine's analyzer. A nil node means the query was entirely stop words.
func (e *Engine) normalizeQuery(query string) (*inference.Node, error) {
	return normalizeQueryWith(e.an, query)
}

// normalizeQueryWith is normalizeQuery for callers without an Engine
// (the NRT engine shares one analyzer across all its segments).
func normalizeQueryWith(an *textproc.Analyzer, query string) (*inference.Node, error) {
	n, err := inference.Parse(query)
	if err != nil {
		return nil, err
	}
	return n.NormalizeTerms(func(t string) string {
		if an.IsStopWord(t) {
			return ""
		}
		return an.Normalize(t)
	}), nil
}

// reserve scans the query tree and pins the inverted lists that are
// already resident — INQUERY's pre-evaluation reservation pass. The
// returned pin releases exactly this query's reservations.
func (e *Engine) reserve(n *inference.Node) Pin {
	if e.opts.DisableReserve {
		return noPin{}
	}
	terms := n.Terms()
	refs := make([]uint64, 0, len(terms))
	for _, t := range terms {
		if entry, ok := e.dict.Lookup(t); ok {
			if ref, ok := e.refOf(entry); ok {
				refs = append(refs, ref)
			}
		}
	}
	return e.backend.Reserve(refs)
}

// Result re-exports the ranked-document type.
type Result = inference.Result

// Search evaluates a query with term-at-a-time processing and returns
// the topK documents (topK <= 0 means all). It is safe for concurrent
// use; each call runs on an implicit per-call Searcher.
//
// Deprecated: use Run.
func (e *Engine) Search(query string, topK int) ([]Result, error) {
	return e.Acquire().Search(query, topK)
}

// SearchDAAT evaluates a query document-at-a-time. It is safe for
// concurrent use.
//
// Deprecated: use Run with Mode: ModeDAAT.
func (e *Engine) SearchDAAT(query string, topK int) ([]Result, error) {
	return e.Acquire().SearchDAAT(query, topK)
}

// SearchCtx is Search under a context: the query respects ctx's
// deadline/cancellation and the engine's admission gate. See
// Searcher.Run for the full contract.
//
// Deprecated: use Run.
func (e *Engine) SearchCtx(ctx context.Context, query string, topK int) ([]Result, error) {
	return e.Acquire().SearchCtx(ctx, query, topK)
}

// SearchDAATCtx is SearchDAAT under a context.
//
// Deprecated: use Run with Mode: ModeDAAT.
func (e *Engine) SearchDAATCtx(ctx context.Context, query string, topK int) ([]Result, error) {
	return e.Acquire().SearchDAATCtx(ctx, query, topK)
}

// NumDocs implements inference.Source. On a shard engine
// (WithGlobalStats) it reports the whole collection's document count:
// belief scores depend on n, and a shard using its local count would
// rank differently from an unsharded build.
func (e *Engine) NumDocs() int {
	if g := e.opts.Global; g != nil {
		return g.NumDocs
	}
	return len(e.docLens)
}

// LocalDocs is the number of documents physically resident in this
// engine — equal to NumDocs except on a shard engine.
func (e *Engine) LocalDocs() int { return len(e.docLens) }

// DocLen implements inference.Source.
func (e *Engine) DocLen(doc uint32) int {
	if int(doc) >= len(e.docLens) {
		return 0
	}
	return int(e.docLens[doc])
}

// AvgDocLen implements inference.Source, using the collection-global
// mean on a shard engine (see NumDocs).
func (e *Engine) AvgDocLen() float64 {
	if g := e.opts.Global; g != nil {
		if g.NumDocs == 0 {
			return 0
		}
		return float64(g.TotalLen) / float64(g.NumDocs)
	}
	if len(e.docLens) == 0 {
		return 0
	}
	return float64(e.total) / float64(len(e.docLens))
}

// ListSize returns the encoded size of a term's inverted list without
// fetching it (from the dictionary), for distribution analyses.
func (e *Engine) ListSize(term string) (int, bool) {
	entry, ok := e.dict.Lookup(e.an.Normalize(term))
	if !ok {
		return 0, false
	}
	return int(entry.ListBytes), true
}

// SaveMeta persists the dictionary and document table (after updates)
// and flushes the backend — a commit point, so both caches are
// invalidated on the way out.
func (e *Engine) SaveMeta() error {
	defer e.InvalidateCaches()
	if err := saveLexicon(e.fs, e.name, e.dict); err != nil {
		return err
	}
	if err := saveDocMeta(e.fs, e.name, e.docLens, e.total); err != nil {
		return err
	}
	return e.backend.Flush()
}

// Explain returns the belief breakdown a query assigns to one document:
// the inference network's per-node evidence combination, with leaf-level
// tf/df detail. The root belief equals the document's Search score.
func (e *Engine) Explain(query string, doc uint32) (*inference.Explanation, error) {
	return e.Acquire().Explain(query, doc)
}

// TraceSearch evaluates one query with a trace recorder attached through
// every layer — searcher (lexicon/fetch spans), inference (score spans),
// backend (buffer hit/miss, fault-in spans, node reads), and the file
// system (simulated-disk I/O events) — and returns the results together
// with the finished trace.
//
// Tracing is a single-stream diagnostic: the recorder is attached to the
// shared file system and backend for the duration of the call, so
// TraceSearch must not run concurrently with other searches on the same
// engine (or any engine sharing the FS). Ordinary Search/SearchDAAT pay
// nothing for this facility: their recorder fields stay nil.
func (e *Engine) TraceSearch(query string, topK int, daat bool) ([]Result, *obs.Trace, error) {
	mode := ModeTAAT
	if daat {
		mode = ModeDAAT
	}
	resp, tr, err := e.TraceRun(Request{Query: query, TopK: topK, Mode: mode})
	return resp.Results, tr, err
}

// TraceRun is TraceSearch over the unified Request/Response API: the
// request is evaluated with a recorder attached through every layer,
// and the response carries the per-request counter delta alongside the
// finished trace. The same single-stream caveat applies.
func (e *Engine) TraceRun(req Request) (Response, *obs.Trace, error) {
	tr := obs.NewTrace(req.Query)
	e.fs.SetRecorder(tr)
	e.backend.SetRecorder(tr)
	defer func() {
		e.backend.SetRecorder(nil)
		e.fs.SetRecorder(nil)
	}()
	s := e.Acquire()
	s.SetRecorder(tr)
	resp, err := s.Run(nil, req)
	tr.Finish()
	return resp, tr, err
}
