package core

import (
	"fmt"

	"repro/internal/inference"
	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

// Counters accumulates the retrieval engine's work, feeding the paper's
// metrics: Lookups is the denominator of Table 5's "A"; Postings drives
// the user-CPU estimate; Queries counts query evaluations.
type Counters struct {
	Lookups      int64 // inverted-list record lookups
	Postings     int64 // posting entries processed
	Queries      int64 // queries evaluated
	BytesFetched int64 // record bytes fetched from the backend
}

// EngineOptions configures an opened engine.
type EngineOptions struct {
	// Analyzer must match the one used at build time; nil selects the
	// default.
	Analyzer *textproc.Analyzer
	// Plan sets Mneme buffer capacities (ignored for the B-tree). The
	// zero plan is "Mneme, No Cache".
	Plan BufferPlan
	// DisableReserve turns off the resident-object reservation scan
	// (for the ablation measurement).
	DisableReserve bool
	// LogAccesses records the byte size of every inverted list fetched,
	// the raw series behind Figure 2.
	LogAccesses bool
	// TrackTermUse records per-term lookup counts (term repetition
	// analysis). Costs a map insert per lookup.
	TrackTermUse bool
	// ChunkLargeLists must match the value the collection was built
	// with (0 = records stored whole).
	ChunkLargeLists int
}

// Engine is one opened collection + backend pair: INQUERY's query
// processor over an inverted file managed by either storage subsystem.
type Engine struct {
	fs      *vfs.FS
	name    string
	kind    BackendKind
	backend Backend
	dict    *lexicon.Dictionary
	an      *textproc.Analyzer
	docLens []uint32
	total   int64

	opts      EngineOptions
	counters  Counters
	accessLog []uint32
	termUse   map[string]int64
}

// Open loads a collection with the chosen backend.
func Open(fs *vfs.FS, name string, kind BackendKind, opt EngineOptions) (*Engine, error) {
	dict, err := loadLexicon(fs, name)
	if err != nil {
		return nil, err
	}
	lens, total, err := loadDocMeta(fs, name)
	if err != nil {
		return nil, err
	}
	var backend Backend
	switch kind {
	case BackendBTree:
		backend, err = OpenBTreeBackend(fs, name+suffixBTree)
	case BackendMneme:
		backend, err = OpenMnemeBackend(fs, name+suffixMneme, opt.Plan, opt.ChunkLargeLists)
	default:
		err = fmt.Errorf("core: unknown backend %d", kind)
	}
	if err != nil {
		return nil, err
	}
	an := opt.Analyzer
	if an == nil {
		an = textproc.NewAnalyzer()
	}
	e := &Engine{
		fs:      fs,
		name:    name,
		kind:    kind,
		backend: backend,
		dict:    dict,
		an:      an,
		docLens: lens,
		total:   total,
		opts:    opt,
	}
	if opt.TrackTermUse {
		e.termUse = make(map[string]int64)
	}
	return e, nil
}

// Close closes the backend. Dictionary and document-table changes made
// by updates must be saved with SaveMeta first.
func (e *Engine) Close() error { return e.backend.Close() }

// Backend exposes the storage backend.
func (e *Engine) Backend() Backend { return e.backend }

// Kind reports which backend the engine runs on.
func (e *Engine) Kind() BackendKind { return e.kind }

// Dictionary exposes the term dictionary.
func (e *Engine) Dictionary() *lexicon.Dictionary { return e.dict }

// Analyzer exposes the text analyzer.
func (e *Engine) Analyzer() *textproc.Analyzer { return e.an }

// Counters returns a snapshot of the engine's work counters.
func (e *Engine) Counters() Counters { return e.counters }

// ResetCounters zeroes work counters and the access log.
func (e *Engine) ResetCounters() {
	e.counters = Counters{}
	e.accessLog = nil
	if e.termUse != nil {
		e.termUse = make(map[string]int64)
	}
}

// AccessLog returns the sizes (bytes) of the inverted lists fetched
// since the last reset, in access order. Empty unless LogAccesses.
func (e *Engine) AccessLog() []uint32 { return e.accessLog }

// TermUse returns per-term lookup counts since the last reset. Empty
// unless TrackTermUse.
func (e *Engine) TermUse() map[string]int64 { return e.termUse }

// refOf maps a dictionary entry to the backend's record handle: the
// term id keys the B-tree; the stored Mneme object identifier locates
// the object.
func (e *Engine) refOf(entry *lexicon.Entry) (uint64, bool) {
	switch e.kind {
	case BackendBTree:
		return uint64(entry.ID), entry.DF > 0
	default:
		return entry.Ref, entry.Ref != 0
	}
}

// normalizeQuery parses and normalizes a query string against the
// engine's analyzer. A nil node means the query was entirely stop words.
func (e *Engine) normalizeQuery(query string) (*inference.Node, error) {
	n, err := inference.Parse(query)
	if err != nil {
		return nil, err
	}
	return n.NormalizeTerms(func(t string) string {
		if e.an.IsStopWord(t) {
			return ""
		}
		return e.an.Normalize(t)
	}), nil
}

// reserve scans the query tree and pins the inverted lists that are
// already resident — INQUERY's pre-evaluation reservation pass.
func (e *Engine) reserve(n *inference.Node) {
	if e.opts.DisableReserve {
		return
	}
	terms := n.Terms()
	refs := make([]uint64, 0, len(terms))
	for _, t := range terms {
		if entry, ok := e.dict.Lookup(t); ok {
			if ref, ok := e.refOf(entry); ok {
				refs = append(refs, ref)
			}
		}
	}
	e.backend.Reserve(refs)
}

// Result re-exports the ranked-document type.
type Result = inference.Result

// Search evaluates a query with term-at-a-time processing and returns
// the topK documents (topK <= 0 means all).
func (e *Engine) Search(query string, topK int) ([]Result, error) {
	n, err := e.normalizeQuery(query)
	if err != nil {
		return nil, err
	}
	e.counters.Queries++
	if n == nil {
		return nil, nil
	}
	e.reserve(n)
	defer e.backend.Release()
	return inference.EvaluateTAAT(n, e, topK)
}

// SearchDAAT evaluates a query document-at-a-time.
func (e *Engine) SearchDAAT(query string, topK int) ([]Result, error) {
	n, err := e.normalizeQuery(query)
	if err != nil {
		return nil, err
	}
	e.counters.Queries++
	if n == nil {
		return nil, nil
	}
	e.reserve(n)
	defer e.backend.Release()
	return inference.EvaluateDAAT(n, e, topK)
}

// countLookup maintains the counters the experiments report for one
// inverted-list record lookup of the given encoded size.
func (e *Engine) countLookup(term string, size uint32) {
	e.counters.Lookups++
	e.counters.BytesFetched += int64(size)
	if e.opts.LogAccesses {
		e.accessLog = append(e.accessLog, size)
	}
	if e.termUse != nil {
		e.termUse[term]++
	}
}

// fetchRecord performs one inverted-list record lookup through the
// backend.
func (e *Engine) fetchRecord(term string) ([]byte, bool, error) {
	entry, ok := e.dict.Lookup(term)
	if !ok {
		return nil, false, nil
	}
	ref, ok := e.refOf(entry)
	if !ok {
		return nil, false, nil
	}
	rec, err := e.backend.Fetch(ref)
	if err != nil {
		return nil, false, err
	}
	e.countLookup(term, uint32(len(rec)))
	return rec, true, nil
}

// Postings implements inference.Source.
func (e *Engine) Postings(term string) ([]postings.Posting, bool, error) {
	rec, ok, err := e.fetchRecord(term)
	if err != nil || !ok {
		return nil, false, err
	}
	ps, err := postings.DecodeAll(rec)
	if err != nil {
		return nil, false, err
	}
	e.counters.Postings += int64(len(ps))
	return ps, true, nil
}

// Iterator implements inference.StreamSource. Chunked records (see
// EngineOptions.ChunkLargeLists) are decoded as they stream off their
// chunk list instead of being materialized first.
func (e *Engine) Iterator(term string) (inference.PostingIterator, bool, error) {
	entry, ok := e.dict.Lookup(term)
	if !ok {
		return nil, false, nil
	}
	ref, ok := e.refOf(entry)
	if !ok {
		return nil, false, nil
	}
	if rs, streams := e.backend.(RecordStreamer); streams {
		if r, ok := rs.StreamRecord(ref); ok {
			e.countLookup(term, entry.ListBytes)
			return &countingIterator{it: postings.NewStreamReader(r), c: &e.counters}, true, nil
		}
	}
	rec, err := e.backend.Fetch(ref)
	if err != nil {
		return nil, false, err
	}
	e.countLookup(term, uint32(len(rec)))
	return &countingIterator{it: postings.NewReader(rec), c: &e.counters}, true, nil
}

// recordIterator is the shape shared by the in-memory and streaming
// posting decoders.
type recordIterator interface {
	Next() (postings.Posting, bool)
	DF() uint64
	Err() error
}

// countingIterator counts postings as they stream past.
type countingIterator struct {
	it recordIterator
	c  *Counters
}

func (ci *countingIterator) Next() (postings.Posting, bool) {
	p, ok := ci.it.Next()
	if ok {
		ci.c.Postings++
	}
	return p, ok
}

func (ci *countingIterator) DF() uint64 { return ci.it.DF() }
func (ci *countingIterator) Err() error { return ci.it.Err() }

// NumDocs implements inference.Source.
func (e *Engine) NumDocs() int { return len(e.docLens) }

// DocLen implements inference.Source.
func (e *Engine) DocLen(doc uint32) int {
	if int(doc) >= len(e.docLens) {
		return 0
	}
	return int(e.docLens[doc])
}

// AvgDocLen implements inference.Source.
func (e *Engine) AvgDocLen() float64 {
	if len(e.docLens) == 0 {
		return 0
	}
	return float64(e.total) / float64(len(e.docLens))
}

// ListSize returns the encoded size of a term's inverted list without
// fetching it (from the dictionary), for distribution analyses.
func (e *Engine) ListSize(term string) (int, bool) {
	entry, ok := e.dict.Lookup(e.an.Normalize(term))
	if !ok {
		return 0, false
	}
	return int(entry.ListBytes), true
}

// SaveMeta persists the dictionary and document table (after updates)
// and flushes the backend.
func (e *Engine) SaveMeta() error {
	if err := saveLexicon(e.fs, e.name, e.dict); err != nil {
		return err
	}
	if err := saveDocMeta(e.fs, e.name, e.docLens, e.total); err != nil {
		return err
	}
	return e.backend.Flush()
}

// Explain returns the belief breakdown a query assigns to one document:
// the inference network's per-node evidence combination, with leaf-level
// tf/df detail. The root belief equals the document's Search score.
func (e *Engine) Explain(query string, doc uint32) (*inference.Explanation, error) {
	n, err := e.normalizeQuery(query)
	if err != nil {
		return nil, err
	}
	if n == nil {
		return &inference.Explanation{Op: "(all terms stopped)", Belief: 0}, nil
	}
	return inference.Explain(n, e, doc)
}
