package core

import (
	"fmt"
	"testing"

	"repro/internal/index"
	"repro/internal/postings"
)

// mixedDocs builds a corpus whose "heavy" list is long enough
// (df > postings.BlockLen) that EncodeAuto chooses a versioned format
// (the v3 bitmap — the list is dense inside its span), while V1Postings
// forces the legacy stream format for the same data.
func mixedDocs(n int) *SliceDocs {
	s := &SliceDocs{}
	for d := 0; d < n; d++ {
		text := "heavy "
		if d%3 == 0 {
			text += "sparse "
		}
		text += fmt.Sprintf("unique%d", d)
		s.Docs = append(s.Docs, index.Doc{ID: uint32(d), Text: text})
	}
	return s
}

// fetchTerm returns the raw stored record of a term, bypassing the
// searcher, so tests can assert which postings format is on disk.
func fetchTerm(t *testing.T, e *Engine, term string) []byte {
	t.Helper()
	entry, ok := e.Dictionary().Lookup(term)
	if !ok {
		t.Fatalf("%s missing from dictionary", term)
	}
	rec, err := e.backend.Fetch(entry.Ref)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestMixedVersionStore proves legacy v1 stream records stay readable
// next to versioned (v2 block / v3 bitmap) records. A store built with
// V1Postings must rank identically to an EncodeAuto build of the same
// corpus; incremental adds then upgrade only the touched lists (Merge
// re-encodes through EncodeAuto), leaving a mixed-version store that
// must still match.
func TestMixedVersionStore(t *testing.T) {
	const nDocs = 400 // "heavy" df 400 > BlockLen and dense: EncodeAuto picks v3
	queries := []string{
		"heavy", "heavy sparse", "#and(heavy sparse)",
		"heavy unique17", "#or(heavy unique42 sparse)",
	}

	v1FS := newFS()
	if _, err := Build(v1FS, "col", mixedDocs(nDocs), BuildOptions{
		Analyzer: plainAnalyzer(), V1Postings: true,
	}); err != nil {
		t.Fatal(err)
	}
	autoFS := newFS()
	if _, err := Build(autoFS, "col", mixedDocs(nDocs), BuildOptions{
		Analyzer: plainAnalyzer(),
	}); err != nil {
		t.Fatal(err)
	}
	v1, err := Open(v1FS, "col", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	auto, err := Open(autoFS, "col", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()

	if postings.IsVersioned(fetchTerm(t, v1, "heavy")) {
		t.Fatal("V1Postings build emitted a versioned record")
	}
	if !postings.IsV3(fetchTerm(t, auto, "heavy")) {
		t.Fatal("EncodeAuto build kept a dense df>BlockLen list out of bitmap format")
	}

	for _, q := range queries {
		want, err := auto.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := v1.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "v1 build "+q, got, want)
	}

	// Pruned DAAT over v1 records exercises the linear-advance fallback:
	// stream iterators cannot skip, but the ranking must not change.
	v1P, err := Open(v1FS, "col", BackendMneme, WithAnalyzer(plainAnalyzer()), WithPruning())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want, err := auto.SearchDAAT(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := v1P.SearchDAAT(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "v1 pruned daat "+q, got, want)
	}
	v1P.Close()

	// Incremental adds re-encode the touched lists through EncodeAuto,
	// upgrading them to a versioned format while untouched lists keep
	// their v1 records.
	for _, e := range []*Engine{v1, auto} {
		if _, err := e.AddDocument("heavy sparse fresh"); err != nil {
			t.Fatal(err)
		}
	}
	if !postings.IsVersioned(fetchTerm(t, v1, "heavy")) {
		t.Fatal("touched large list was not upgraded on merge")
	}
	if postings.IsVersioned(fetchTerm(t, v1, "unique17")) {
		t.Fatal("untouched list changed format")
	}
	for _, q := range append(queries, "fresh") {
		want, err := auto.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := v1.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "mixed store "+q, got, want)
	}
}
