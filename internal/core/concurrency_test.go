package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/index"
	"repro/internal/mneme"
	"repro/internal/vfs"
)

// concurrencyCorpus builds a medium collection and a query stream with
// the term repetition the paper's caching exploits.
func concurrencyCorpus(t testing.TB, fs *vfs.FS, name string) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var docs []index.Doc
	for d := 0; d < 800; d++ {
		text := ""
		for w := 0; w < 50; w++ {
			text += fmt.Sprintf("w%d ", rng.Intn(900))
		}
		docs = append(docs, index.Doc{ID: uint32(d), Text: text})
	}
	if _, err := Build(fs, name, &SliceDocs{Docs: docs}, BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		t.Fatal(err)
	}
	var queries []string
	for i := 0; i < 48; i++ {
		a, b, c := rng.Intn(200), rng.Intn(200), rng.Intn(900)
		switch i % 4 {
		case 0:
			queries = append(queries, fmt.Sprintf("w%d w%d w%d", a, b, c))
		case 1:
			queries = append(queries, fmt.Sprintf("#and(w%d w%d)", a, b))
		case 2:
			queries = append(queries, fmt.Sprintf("#or(w%d w%d w%d)", a, b, c))
		case 3:
			queries = append(queries, fmt.Sprintf("#wsum(3 w%d 1 w%d)", a, c))
		}
	}
	return queries
}

// concurrencyConfigs lists the three measured backend configurations.
func concurrencyConfigs() []struct {
	name string
	kind BackendKind
	opts []Option
} {
	plan := BufferPlan{SmallBytes: 12 << 10, MediumBytes: 64 << 10, LargeBytes: 256 << 10}
	return []struct {
		name string
		kind BackendKind
		opts []Option
	}{
		{"btree", BackendBTree, nil},
		{"mneme-nocache", BackendMneme, nil},
		{"mneme-cache", BackendMneme, []Option{WithPlan(plan)}},
	}
}

func sameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s rank %d: %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestConcurrentSearchMatchesSerial runs the same query batch serially
// and from N goroutines (each on its own Searcher) on every backend
// configuration. Rankings must be identical result-for-result, and the
// engine's aggregate counters must reconcile exactly with the serial
// run — the invariant that keeps the paper's tables valid when queries
// are served concurrently. Run with -race this is also the engine's
// concurrency smoke test.
func TestConcurrentSearchMatchesSerial(t *testing.T) {
	fs := newFS()
	queries := concurrencyCorpus(t, fs, "conc")

	for _, cfg := range concurrencyConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			// Serial reference pass.
			ser, err := Open(fs, "conc", cfg.kind, append([]Option{WithAnalyzer(plainAnalyzer())}, cfg.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]Result, len(queries))
			for i, q := range queries {
				if want[i], err = ser.Search(q, 10); err != nil {
					t.Fatal(err)
				}
			}
			wantAgg := ser.Counters()
			ser.Close()

			// Concurrent pass: goroutine g serves queries g, g+G, g+2G, …
			// so together the workers evaluate exactly the serial batch.
			eng, err := Open(fs, "conc", cfg.kind, append([]Option{WithAnalyzer(plainAnalyzer())}, cfg.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			const workers = 6
			got := make([][]Result, len(queries))
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					s := eng.Acquire()
					for i := g; i < len(queries); i += workers {
						r, err := s.Search(queries[i], 10)
						if err != nil {
							t.Errorf("query %d: %v", i, err)
							return
						}
						got[i] = r
					}
				}(g)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			for i := range queries {
				sameResults(t, fmt.Sprintf("query %d", i), got[i], want[i])
			}
			if agg := eng.Counters(); agg != wantAgg {
				t.Fatalf("aggregate counters diverged:\nconcurrent %+v\nserial     %+v", agg, wantAgg)
			}
			if agg := eng.Counters(); agg.Queries != int64(len(queries)) {
				t.Fatalf("Queries = %d, want %d", agg.Queries, len(queries))
			}
		})
	}
}

// TestSearchBatchMatchesSerial drives the batch API at several
// parallelism levels and checks order, rankings, and aggregates.
func TestSearchBatchMatchesSerial(t *testing.T) {
	fs := newFS()
	queries := concurrencyCorpus(t, fs, "batch")

	for _, cfg := range concurrencyConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			ser, err := Open(fs, "batch", cfg.kind, append([]Option{WithAnalyzer(plainAnalyzer())}, cfg.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ser.SearchBatch(queries, TopK(10))
			if err != nil {
				t.Fatal(err)
			}
			wantAgg := ser.Counters()
			ser.Close()

			for _, par := range []int{1, 4, 16} {
				eng, err := Open(fs, "batch", cfg.kind, append([]Option{WithAnalyzer(plainAnalyzer())}, cfg.opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.SearchBatch(queries, Parallelism(par), TopK(10))
				if err != nil {
					t.Fatal(err)
				}
				for i := range queries {
					sameResults(t, fmt.Sprintf("par %d query %d", par, i), got[i], want[i])
				}
				if agg := eng.Counters(); agg != wantAgg {
					t.Fatalf("par %d: aggregates %+v, want %+v", par, agg, wantAgg)
				}
				eng.Close()
			}
		})
	}
}

// TestSearchBatchError: a malformed query stops the feed and surfaces
// the first error; completed rankings are still returned.
func TestSearchBatchError(t *testing.T) {
	fs := newFS()
	buildTiny(t, fs, "tiny")
	eng, err := Open(fs, "tiny", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	queries := []string{"information", "#bogus(x)", "object"}
	if _, err := eng.SearchBatch(queries, Parallelism(2)); err == nil {
		t.Fatal("batch swallowed a parse error")
	}
	if _, err := eng.SearchBatch(nil, Parallelism(4)); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestCommitRollbackDuringSearches races the store's transaction
// boundary against live searchers: a writer goroutine allocates scratch
// objects and alternates Commit and Rollback while reader goroutines
// evaluate the query batch. Committed inverted lists are never touched,
// so every concurrent ranking must equal the serial baseline, and the
// whole dance must be race-clean.
func TestCommitRollbackDuringSearches(t *testing.T) {
	fs := newFS()
	queries := concurrencyCorpus(t, fs, "txn")
	eng, err := Open(fs, "txn", BackendMneme,
		WithAnalyzer(plainAnalyzer()),
		WithPlan(BufferPlan{SmallBytes: 12 << 10, MediumBytes: 64 << 10, LargeBytes: 256 << 10}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	want := make([][]Result, len(queries))
	for i, q := range queries {
		if want[i], err = eng.Search(q, 10); err != nil {
			t.Fatal(err)
		}
	}

	st := eng.Backend().(interface{ Mneme() *mneme.Store }).Mneme()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		scratch := make([]byte, 64)
		for i := 0; i < 40; i++ {
			id, err := st.Allocate(PoolNameMedium, scratch)
			if err != nil {
				t.Errorf("allocate: %v", err)
				return
			}
			if i%2 == 0 {
				if err := st.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				if err := st.Delete(id); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
				if err := st.Commit(); err != nil {
					t.Errorf("commit after delete: %v", err)
					return
				}
			} else if err := st.Rollback(); err != nil {
				t.Errorf("rollback: %v", err)
				return
			}
		}
	}()

	const readers = 4
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := eng.Acquire()
			for {
				for i, q := range queries {
					got, err := s.Search(q, 10)
					if err != nil {
						t.Errorf("reader %d query %d: %v", g, i, err)
						return
					}
					if len(got) != len(want[i]) {
						t.Errorf("reader %d query %d: %d results, want %d", g, i, len(got), len(want[i]))
						return
					}
					for r := range got {
						if got[r] != want[i][r] {
							t.Errorf("reader %d query %d rank %d: %v, want %v", g, i, r, got[r], want[i][r])
							return
						}
					}
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentMixedReadPaths exercises the remaining read surface
// (Explain, Snapshot, ListSize, buffer stats) while searches run, to
// widen -race coverage beyond the Search path.
func TestConcurrentMixedReadPaths(t *testing.T) {
	fs := newFS()
	queries := concurrencyCorpus(t, fs, "mixed")
	eng, err := Open(fs, "mixed", BackendMneme,
		WithAnalyzer(plainAnalyzer()),
		WithPlan(BufferPlan{SmallBytes: 12 << 10, MediumBytes: 64 << 10, LargeBytes: 256 << 10}),
		WithAccessLog(), WithTermUse())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := eng.Acquire()
			for i := g; i < len(queries); i += 4 {
				if _, err := s.Search(queries[i], 5); err != nil {
					t.Errorf("search: %v", err)
					return
				}
				if _, err := s.Explain(queries[i], 0); err != nil {
					t.Errorf("explain: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			eng.Snapshot()
			eng.Counters()
			eng.AccessLog()
			eng.TermUse()
			eng.ListSize("w1")
			eng.Backend().BufferStats()
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	c := eng.Counters()
	if c.Queries != int64(len(queries)) || c.Lookups == 0 {
		t.Fatalf("counters = %+v", c)
	}
	if len(eng.AccessLog()) == 0 || len(eng.TermUse()) == 0 {
		t.Fatal("access log / term use not populated")
	}
}
