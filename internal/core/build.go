package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/mneme"
	"repro/internal/postings"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

// Index file name suffixes. One collection produces a shared dictionary
// and document table plus one index file per backend.
const (
	suffixLexicon = ".lex"
	suffixDocMeta = ".doc"
	suffixBTree   = ".bt"
	suffixMneme   = ".mn"
)

// DocSource streams documents into the index builder.
type DocSource interface {
	// Next returns the next document; ok=false ends the stream.
	Next() (doc index.Doc, ok bool, err error)
}

// SliceDocs adapts a document slice to DocSource.
type SliceDocs struct {
	Docs []index.Doc
	i    int
}

// Next implements DocSource.
func (s *SliceDocs) Next() (index.Doc, bool, error) {
	if s.i >= len(s.Docs) {
		return index.Doc{}, false, nil
	}
	d := s.Docs[s.i]
	s.i++
	return d, true, nil
}

// BuildOptions configures index construction.
type BuildOptions struct {
	// Analyzer tokenizes documents (and later, queries — engines must
	// open with the same configuration). Nil selects the default.
	Analyzer *textproc.Analyzer
	// Backends lists the index files to produce; empty means both.
	Backends []BackendKind
	// RunLimit caps buffered tuples during the external sort.
	RunLimit int
	// MnemeConfig overrides the store layout (pool partition and
	// segment sizes) for ablation experiments; nil selects the paper's
	// three-pool configuration.
	MnemeConfig *mneme.Config
	// ChunkLargeLists, when positive, stores inverted lists larger than
	// MediumListMax as linked chunk lists with this payload size per
	// chunk (paper §6). Engines must open with the same value.
	ChunkLargeLists int
	// V1Postings forces the sequential v1 record encoding for every
	// list, producing a legacy-layout collection without versioned
	// records. Engines read every format, so this needs no matching
	// open-time option. Equivalent to Codec: postings.CodecV1.
	V1Postings bool
	// Codec pins the record encoding policy (the codec-ablation axis):
	// CodecAuto (default) selects per list, CodecV1 / CodecV2 force one
	// format. V1Postings overrides it when set.
	Codec postings.Codec
}

// BuildStats reports what was built — the raw material of the paper's
// Table 1.
type BuildStats struct {
	Docs       int
	TotalToks  int64
	Terms      int
	Records    int64
	ListBytes  int64 // total encoded inverted-list bytes
	BTreeBytes int64 // size of the B-tree index file (0 if not built)
	MnemeBytes int64 // size of the Mneme index file (0 if not built)
}

// Build indexes a document stream into the named collection, producing
// the shared dictionary and document table plus the requested backend
// index files. Both backends store identical record bytes; they differ
// only in how the records are managed — the paper's controlled variable.
func Build(fs *vfs.FS, name string, src DocSource, opt BuildOptions) (*BuildStats, error) {
	backends := opt.Backends
	if len(backends) == 0 {
		backends = []BackendKind{BackendBTree, BackendMneme}
	}
	b := index.NewBuilder(fs, index.Options{
		Analyzer:   opt.Analyzer,
		RunLimit:   opt.RunLimit,
		Scratch:    name + ".run",
		V1Postings: opt.V1Postings,
		Codec:      opt.Codec,
	})
	for {
		doc, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if err := b.Add(doc); err != nil {
			return nil, err
		}
	}
	return finishBuild(fs, name, b, backends, opt.MnemeConfig, opt.ChunkLargeLists)
}

// finishBuild drains the merged record stream into the backend sinks
// and persists the dictionary and document table.
func finishBuild(fs *vfs.FS, name string, b *index.Builder, backends []BackendKind, override *mneme.Config, chunkBytes int) (*BuildStats, error) {
	merged, err := b.Finish()
	if err != nil {
		return nil, err
	}
	var wantBTree, wantMneme bool
	for _, k := range backends {
		switch k {
		case BackendBTree:
			wantBTree = true
		case BackendMneme:
			wantMneme = true
		default:
			return nil, fmt.Errorf("core: unknown backend %d", k)
		}
	}

	var mn *mnemeBackend
	if wantMneme {
		// Build with generous medium/large buffers so allocation does
		// not thrash; query-time runs re-open with the measured plan.
		cfg := MnemeConfig(BufferPlan{
			SmallBytes:  1 << 16,
			MediumBytes: 1 << 20,
			LargeBytes:  1 << 22,
		})
		if override != nil {
			cfg = *override
		}
		mn, err = CreateMnemeBackend(fs, name+suffixMneme, cfg)
		if err != nil {
			return nil, err
		}
		mn.SetChunking(chunkBytes)
	}
	dict := b.Dictionary()

	// storeMneme allocates a record in the object store and records the
	// object identifier in the term's dictionary entry — "The Mneme
	// identifier assigned to the object was stored in the INQUERY hash
	// dictionary entry for the associated term" (§3.3).
	storeMneme := func(termID uint32, rec []byte) error {
		id, err := mn.Store(rec)
		if err != nil {
			return err
		}
		dict.ByID(termID).Ref = id
		return nil
	}

	if wantBTree {
		bt, tree, err := CreateBTreeBackend(fs, name+suffixBTree)
		if err != nil {
			return nil, err
		}
		var inner error
		err = tree.BulkLoad(func() (uint32, []byte, bool) {
			term, rec, ok, err := merged.Next()
			if err != nil {
				inner = err
				return 0, nil, false
			}
			if !ok {
				return 0, nil, false
			}
			if wantMneme {
				if err := storeMneme(term, rec); err != nil {
					inner = err
					return 0, nil, false
				}
			}
			return term, rec, true
		})
		if err == nil {
			err = inner
		}
		if err != nil {
			return nil, err
		}
		if err := bt.Close(); err != nil {
			return nil, err
		}
	} else if wantMneme {
		for {
			term, rec, ok, err := merged.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if err := storeMneme(term, rec); err != nil {
				return nil, err
			}
		}
	}
	if err := merged.Close(); err != nil {
		return nil, err
	}
	if mn != nil {
		if err := mn.Close(); err != nil {
			return nil, err
		}
	}

	if err := saveLexicon(fs, name, dict); err != nil {
		return nil, err
	}
	if err := saveDocMeta(fs, name, b.DocLens(), b.TotalLen()); err != nil {
		return nil, err
	}

	st := &BuildStats{
		Docs:      b.NumDocs(),
		TotalToks: b.TotalLen(),
		Terms:     dict.Len(),
		Records:   merged.Records,
		ListBytes: merged.ListBytes,
	}
	if wantBTree {
		f, err := fs.Open(name + suffixBTree)
		if err != nil {
			return nil, err
		}
		st.BTreeBytes = f.Size()
	}
	if wantMneme {
		f, err := fs.Open(name + suffixMneme)
		if err != nil {
			return nil, err
		}
		st.MnemeBytes = f.Size()
	}
	return st, nil
}

// saveLexicon writes the dictionary image, replacing any previous one.
func saveLexicon(fs *vfs.FS, name string, dict *lexicon.Dictionary) error {
	fname := name + suffixLexicon
	if fs.Exists(fname) {
		if err := fs.Remove(fname); err != nil {
			return err
		}
	}
	f, err := fs.Create(fname)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(dict.Encode(), 0)
	return err
}

func loadLexicon(fs *vfs.FS, name string) (*lexicon.Dictionary, error) {
	f, err := fs.Open(name + suffixLexicon)
	if err != nil {
		return nil, err
	}
	img := make([]byte, f.Size())
	if err := vfs.ReadFull(f, img, 0); err != nil {
		return nil, err
	}
	return lexicon.Decode(img)
}

// saveDocMeta writes the document table: count, total length, and
// per-document token counts.
func saveDocMeta(fs *vfs.FS, name string, lens []uint32, total int64) error {
	buf := make([]byte, 0, 8+len(lens)*3)
	buf = binary.AppendUvarint(buf, uint64(len(lens)))
	buf = binary.AppendUvarint(buf, uint64(total))
	for _, l := range lens {
		buf = binary.AppendUvarint(buf, uint64(l))
	}
	fname := name + suffixDocMeta
	if fs.Exists(fname) {
		if err := fs.Remove(fname); err != nil {
			return err
		}
	}
	f, err := fs.Create(fname)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(buf, 0)
	return err
}

func loadDocMeta(fs *vfs.FS, name string) (lens []uint32, total int64, err error) {
	f, err := fs.Open(name + suffixDocMeta)
	if err != nil {
		return nil, 0, err
	}
	buf := make([]byte, f.Size())
	if err := vfs.ReadFull(f, buf, 0); err != nil {
		return nil, 0, err
	}
	off := 0
	get := func() (uint64, error) {
		v, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return 0, fmt.Errorf("core: corrupt document table for %q", name)
		}
		off += n
		return v, nil
	}
	n, err := get()
	if err != nil {
		return nil, 0, err
	}
	tot, err := get()
	if err != nil {
		return nil, 0, err
	}
	lens = make([]uint32, n)
	for i := range lens {
		v, err := get()
		if err != nil {
			return nil, 0, err
		}
		lens[i] = uint32(v)
	}
	return lens, int64(tot), nil
}
