package core

import (
	"testing"

	"repro/internal/postings"
	"repro/internal/vfs"
)

// TestCodecDifferential is the codec-ablation oracle: the same corpus
// built under every encoding policy — forced v1 streams, forced v2
// blocks, and the adaptive default that upgrades dense lists to v3
// bitmaps — must rank byte-identically on both backends under every
// evaluation mode. The test first pins what each build actually put on
// disk for the dense "heavy" list, so a silently inert Codec option
// cannot pass as a ranking match between three identical stores.
func TestCodecDifferential(t *testing.T) {
	builds := []struct {
		name  string
		codec postings.Codec
		check func([]byte) bool
	}{
		{"v1", postings.CodecV1, func(rec []byte) bool { return !postings.IsVersioned(rec) }},
		{"v2", postings.CodecV2, postings.IsV2},
		{"auto", postings.CodecAuto, postings.IsV3}, // dense df=400 > BlockLen: bitmap wins
	}
	fss := make(map[string]*vfs.FS, len(builds))
	for _, b := range builds {
		fs := newFS()
		if _, err := Build(fs, "col", mixedDocs(400), BuildOptions{
			Analyzer: plainAnalyzer(), Codec: b.codec,
		}); err != nil {
			t.Fatalf("%s build: %v", b.name, err)
		}
		fss[b.name] = fs
	}

	for _, kind := range []BackendKind{BackendBTree, BackendMneme} {
		t.Run(kind.String(), func(t *testing.T) {
			engines := make(map[string]*Engine, len(builds))
			for _, b := range builds {
				e, err := Open(fss[b.name], "col", kind, WithAnalyzer(plainAnalyzer()))
				if err != nil {
					t.Fatalf("open %s: %v", b.name, err)
				}
				defer e.Close()
				// The raw-record probe resolves dictionary Refs, which
				// address Mneme objects; both backends store the same
				// record bytes, so pinning one store pins the build.
				if kind == BackendMneme {
					if rec := fetchTerm(t, e, "heavy"); !b.check(rec) {
						t.Fatalf("%s build stored the wrong record format for the dense list (magic % x)", b.name, rec[:3])
					}
				}
				engines[b.name] = e
			}
			for _, m := range cacheModes {
				for _, q := range cacheQueries {
					req := m.req
					req.Query = q
					want, err := engines["v1"].Run(nil, req)
					if err != nil {
						t.Fatal(err)
					}
					for _, name := range []string{"v2", "auto"} {
						got, err := engines[name].Run(nil, req)
						if err != nil {
							t.Fatalf("%s %s %q: %v", name, m.name, q, err)
						}
						sameResults(t, name+" "+m.name+" "+q, got.Results, want.Results)
					}
				}
			}
		})
	}
}
