package core

import (
	"fmt"
	"testing"
)

// cacheModes is the evaluation matrix the cache differential tests run:
// the cached engine must be ranking-indistinguishable from the plain one
// under every evaluation strategy.
var cacheModes = []struct {
	name string
	req  Request
}{
	{"taat", Request{Mode: ModeTAAT}},
	{"daat", Request{Mode: ModeDAAT, TopK: 10}},
	// Distinct TopK: CanonicalKey deliberately ignores Prune (pruning is
	// exact), so TopK 10 would be served from the daat entry above.
	{"daat-prune", Request{Mode: ModeDAAT, TopK: 7, Prune: true}},
}

var cacheQueries = []string{
	"heavy", "heavy sparse", "#and(heavy sparse)",
	"heavy unique17", "#or(heavy unique42 sparse)",
}

// TestCacheDifferential proves the hot-path caches are invisible to
// ranking: on both backends and under every evaluation mode, a cold
// query, the cache-warming repeat, and a plain uncached engine agree
// byte-for-byte — and the repeat demonstrably came from the caches
// (zero lookups, a recorded result-cache hit).
func TestCacheDifferential(t *testing.T) {
	for _, kind := range []BackendKind{BackendBTree, BackendMneme} {
		t.Run(kind.String(), func(t *testing.T) {
			fs := newFS()
			if _, err := Build(fs, "col", mixedDocs(400), BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
				t.Fatal(err)
			}
			plain, err := Open(fs, "col", kind, WithAnalyzer(plainAnalyzer()))
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			cached, err := Open(fs, "col", kind, WithAnalyzer(plainAnalyzer()),
				WithResultCache(64), WithBlockCache(8))
			if err != nil {
				t.Fatal(err)
			}
			defer cached.Close()

			for _, m := range cacheModes {
				for _, q := range cacheQueries {
					req := m.req
					req.Query = q
					want, err := plain.Run(nil, req)
					if err != nil {
						t.Fatal(err)
					}
					cold, err := cached.Run(nil, req)
					if err != nil {
						t.Fatal(err)
					}
					sameResults(t, m.name+" cold "+q, cold.Results, want.Results)
					if cold.Counters.ResultCacheHits != 0 {
						t.Fatalf("%s %q: cold run claims a result-cache hit", m.name, q)
					}
					warm, err := cached.Run(nil, req)
					if err != nil {
						t.Fatal(err)
					}
					sameResults(t, m.name+" warm "+q, warm.Results, want.Results)
					if warm.Counters.ResultCacheHits != 1 {
						t.Fatalf("%s %q: warm repeat not served by the result cache: %+v", m.name, q, warm.Counters)
					}
					if warm.Counters.Lookups != 0 || warm.Counters.Postings != 0 || warm.Counters.BytesFetched != 0 {
						t.Fatalf("%s %q: result-cache hit still did work: %+v", m.name, q, warm.Counters)
					}
					if warm.Outcome != OutcomeOK {
						t.Fatalf("%s %q: cached outcome %q", m.name, q, warm.Outcome)
					}
				}
			}
			c := cached.Counters()
			if c.BlockCacheHits == 0 {
				t.Fatal("no block-cache hits across the whole matrix")
			}
			snap := cached.Snapshot()
			if snap.Cache == nil || snap.Cache.BlockHits == 0 || snap.Cache.ResultHits == 0 {
				t.Fatalf("snapshot cache block missing or empty: %+v", snap.Cache)
			}
			if plain.Snapshot().Cache != nil {
				t.Fatal("uncached engine grew a snapshot cache block")
			}
		})
	}
}

// TestBlockCacheAloneDifferential isolates the block cache (no result
// cache): repeats re-evaluate, but served from decoded blocks, and the
// ranking must not move. This is the path where a stale cached block
// would actually change scores, so it runs the full matrix too.
func TestBlockCacheAloneDifferential(t *testing.T) {
	fs := newFS()
	if _, err := Build(fs, "col", mixedDocs(400), BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		t.Fatal(err)
	}
	plain, err := Open(fs, "col", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	cached, err := Open(fs, "col", BackendMneme, WithAnalyzer(plainAnalyzer()), WithBlockCache(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()
	for _, m := range cacheModes {
		for _, q := range cacheQueries {
			req := m.req
			req.Query = q
			want, err := plain.Run(nil, req)
			if err != nil {
				t.Fatal(err)
			}
			for pass := 0; pass < 2; pass++ {
				got, err := cached.Run(nil, req)
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, fmt.Sprintf("%s %q pass %d", m.name, q, pass), got.Results, want.Results)
			}
		}
	}
	if c := cached.Counters(); c.BlockCacheHits == 0 {
		t.Fatal("block cache never hit")
	}
}

// TestCacheInvalidation proves a mutation can never leak a stale
// ranking: after AddDocument / DeleteDocument / SaveMeta, cached
// queries must match a freshly opened uncached engine, and queries
// whose answer the mutation changed must show the change.
func TestCacheInvalidation(t *testing.T) {
	fs := newFS()
	if _, err := Build(fs, "col", mixedDocs(50), BuildOptions{
		Analyzer: plainAnalyzer(), Backends: []BackendKind{BackendMneme},
	}); err != nil {
		t.Fatal(err)
	}
	e, err := Open(fs, "col", BackendMneme, WithAnalyzer(plainAnalyzer()),
		WithResultCache(64), WithBlockCache(8))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	warm := func(q string) Response {
		t.Helper()
		// Twice: the second call is the one at risk of staleness.
		if _, err := e.Run(nil, Request{Query: q}); err != nil {
			t.Fatal(err)
		}
		resp, err := e.Run(nil, Request{Query: q})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	before := warm("heavy")
	if n := len(warm("fresh").Results); n != 0 {
		t.Fatalf("unexpected %d results for unseen term", n)
	}

	if _, err := e.AddDocument("heavy fresh"); err != nil {
		t.Fatal(err)
	}
	after := warm("heavy")
	if len(after.Results) != len(before.Results)+1 {
		t.Fatalf("post-add ranking has %d docs, want %d — stale cache?", len(after.Results), len(before.Results)+1)
	}
	if n := len(warm("fresh").Results); n != 1 {
		t.Fatalf("new document invisible after add: %d results", n)
	}

	// Cross-check the whole post-mutation state against a cacheless
	// engine opened over the same store.
	if err := e.SaveMeta(); err != nil {
		t.Fatal(err)
	}
	ref, err := Open(fs, "col", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, q := range []string{"heavy", "fresh", "#and(heavy sparse)"} {
		want, err := ref.Run(nil, Request{Query: q})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "post-mutation "+q, warm(q).Results, want.Results)
	}

	doomed := uint32(0)
	if err := e.DeleteDocument(doomed, "heavy unique0"); err != nil {
		t.Fatal(err)
	}
	for _, r := range warm("heavy").Results {
		if r.Doc == doomed {
			t.Fatal("deleted document still ranked — stale cache")
		}
	}
}

// TestNRTCacheInvalidation proves the watermark-keyed NRT result cache:
// repeats hit, ingest invalidates (the new document must rank), and a
// flush flip — which rewrites storage but preserves rankings — keeps
// serving correct results.
func TestNRTCacheInvalidation(t *testing.T) {
	fs := newFS()
	e, err := OpenNRT(fs, "col", BackendMneme, NRTConfig{},
		WithAnalyzer(plainAnalyzer()), WithResultCache(64), WithBlockCache(8))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Ingest("heavy sparse", "heavy unique1", "heavy sparse unique2"); err != nil {
		t.Fatal(err)
	}

	run := func(q string) Response {
		t.Helper()
		resp, err := e.Run(nil, Request{Query: q})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	r1 := run("heavy")
	r2 := run("heavy")
	sameResults(t, "nrt repeat", r2.Results, r1.Results)
	if r2.Counters.ResultCacheHits != 1 {
		t.Fatalf("nrt repeat missed the result cache: %+v", r2.Counters)
	}

	if _, err := e.Ingest("heavy heavy heavy"); err != nil {
		t.Fatal(err)
	}
	r3 := run("heavy")
	if r3.Counters.ResultCacheHits != 0 {
		t.Fatal("post-ingest query served from the pre-ingest cache")
	}
	if len(r3.Results) != len(r1.Results)+1 {
		t.Fatalf("ingested document invisible: %d results, want %d", len(r3.Results), len(r1.Results)+1)
	}

	// Flush flips the manifest and re-homes the memtable into a segment;
	// the ranking is invariant, and the cache (keyed by watermark, which
	// flush does not move) may keep serving it — but never a wrong one.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	r4 := run("heavy")
	sameResults(t, "post-flush", r4.Results, r3.Results)

	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	r5 := run("heavy")
	sameResults(t, "post-compact", r5.Results, r3.Results)
}
