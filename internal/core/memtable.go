package core

import (
	"sort"
	"sync"

	"repro/internal/postings"
	"repro/internal/textproc"
)

// memtable holds freshly ingested postings in a cheap in-memory
// representation — per-term slices of decoded postings in ascending
// global doc-ID order — searchable the moment the ingest batch is
// acknowledged. v2 block encoding cost is paid only at flush, when the
// memtable's documents are replayed through the batch builder into an
// immutable segment.
//
// Consistency model: readers capture a watermark (the first global doc
// ID NOT visible to them) and truncate every list they look up at that
// watermark. Appends only ever extend list tails with larger doc IDs,
// and the slice header is captured under the lock, so a reader's
// truncated prefix is immutable for the life of the query — queries
// never see a half-ingested batch, and two lookups of the same term
// within one query see identical lists.
type memtable struct {
	mu    sync.RWMutex
	terms map[string]*memList
	docs  int
	toks  int64
	bytes int64 // rough heap footprint, drives the flush size trigger
}

type memList struct {
	ps    []postings.Posting
	ctf   uint64
	maxTF uint32
}

func newMemtable() *memtable {
	return &memtable{terms: make(map[string]*memList)}
}

// add indexes one analyzed document under a global doc ID. Callers
// serialize adds (the ingest lock) and must present strictly ascending
// IDs; tokens carry ascending positions, as the analyzer emits them.
func (m *memtable) add(doc uint32, toks []textproc.Token) {
	type run struct {
		term string
		pos  []uint32
	}
	// Group positions per term preserving analyzer order; docs are
	// small compared to lists, so a transient map per add is fine.
	byTerm := make(map[string]int, len(toks))
	runs := make([]run, 0, len(toks))
	for _, tk := range toks {
		i, seen := byTerm[tk.Term]
		if !seen {
			i = len(runs)
			byTerm[tk.Term] = i
			runs = append(runs, run{term: tk.Term})
		}
		runs[i].pos = append(runs[i].pos, tk.Pos)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range runs {
		ml := m.terms[r.term]
		if ml == nil {
			ml = &memList{}
			m.terms[r.term] = ml
			m.bytes += int64(len(r.term)) + 48 // key + list header
		}
		ml.ps = append(ml.ps, postings.Posting{Doc: doc, Positions: r.pos})
		ml.ctf += uint64(len(r.pos))
		if tf := uint32(len(r.pos)); tf > ml.maxTF {
			ml.maxTF = tf
		}
		m.bytes += 16 + 4*int64(len(r.pos))
	}
	m.docs++
	m.toks += int64(len(toks))
}

// lookup returns the term's postings truncated at the watermark, plus
// a max-TF bound valid for that prefix. The returned slice aliases the
// memtable but is immutable: appends extend beyond the captured length
// and never touch earlier elements.
func (m *memtable) lookup(term string, watermark uint32) ([]postings.Posting, uint32) {
	m.mu.RLock()
	ml := m.terms[term]
	var ps []postings.Posting
	var maxTF uint32
	if ml != nil {
		ps, maxTF = ml.ps, ml.maxTF
	}
	m.mu.RUnlock()
	if len(ps) == 0 {
		return nil, 0
	}
	n := sort.Search(len(ps), func(i int) bool { return ps[i].Doc >= watermark })
	if n == 0 {
		return nil, 0
	}
	// maxTF covers the full list; it is still a sound (if loose) upper
	// bound for any prefix, which is all MaxScore pruning needs.
	return ps[:n], maxTF
}

// iterator opens an advancing, bounded iterator over the term's
// watermark-truncated list; nil when the term has no visible postings.
func (m *memtable) iterator(term string, watermark uint32) *memIter {
	ps, maxTF := m.lookup(term, watermark)
	if len(ps) == 0 {
		return nil
	}
	return &memIter{ps: ps, maxTF: maxTF}
}

// stats returns (docs, tokens, approximate bytes) under the lock.
func (m *memtable) stats() (int, int64, int64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.docs, m.toks, m.bytes
}

// memIter streams one memtable list. It implements
// inference.AdvancingIterator and inference.BoundedIterator, so
// memtable tails participate in DAAT and MaxScore evaluation exactly
// like on-disk block readers.
type memIter struct {
	ps    []postings.Posting
	i     int
	maxTF uint32
}

func (it *memIter) Next() (postings.Posting, bool) {
	if it.i >= len(it.ps) {
		return postings.Posting{}, false
	}
	p := it.ps[it.i]
	it.i++
	return p, true
}

// Advance binary-searches forward from the current position.
func (it *memIter) Advance(target uint32) (postings.Posting, bool) {
	rest := it.ps[it.i:]
	n := sort.Search(len(rest), func(j int) bool { return rest[j].Doc >= target })
	it.i += n
	return it.Next()
}

func (it *memIter) DF() uint64            { return uint64(len(it.ps)) }
func (it *memIter) MaxTF() (uint32, bool) { return it.maxTF, true }
func (it *memIter) Err() error            { return nil }
