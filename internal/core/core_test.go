package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

func newFS() *vfs.FS {
	return vfs.New(vfs.Options{BlockSize: 8192, OSCacheBytes: 1 << 22})
}

func plainAnalyzer() *textproc.Analyzer {
	return textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
}

var tinyDocs = []index.Doc{
	{ID: 0, Text: "information retrieval with inverted files"},
	{ID: 1, Text: "persistent object store design"},
	{ID: 2, Text: "information retrieval using a persistent object store"},
	{ID: 3, Text: "btree indexes and keyed files"},
	{ID: 4, Text: "buffer management for object stores"},
}

func buildTiny(t *testing.T, fs *vfs.FS, name string) *BuildStats {
	t.Helper()
	st, err := Build(fs, name, &SliceDocs{Docs: tinyDocs}, BuildOptions{Analyzer: plainAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func openBoth(t *testing.T, fs *vfs.FS, name string, plan BufferPlan) (bt, mn *Engine) {
	t.Helper()
	var err error
	bt, err = Open(fs, name, BackendBTree, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	mn, err = Open(fs, name, BackendMneme, WithAnalyzer(plainAnalyzer()), WithPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	return bt, mn
}

func TestBuildProducesBothBackends(t *testing.T) {
	fs := newFS()
	st := buildTiny(t, fs, "tiny")
	if st.Docs != 5 || st.Records == 0 || st.Terms == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BTreeBytes == 0 || st.MnemeBytes == 0 {
		t.Fatalf("backend sizes = %+v", st)
	}
	if int64(st.Terms) != st.Records {
		t.Fatalf("terms %d != records %d", st.Terms, st.Records)
	}
}

func TestSearchSameResultsAcrossBackends(t *testing.T) {
	fs := newFS()
	buildTiny(t, fs, "tiny")
	bt, mn := openBoth(t, fs, "tiny", BufferPlan{SmallBytes: 1 << 14, MediumBytes: 1 << 16, LargeBytes: 1 << 18})
	defer bt.Close()
	defer mn.Close()

	queries := []string{
		"information retrieval",
		"#and(persistent store)",
		"#or(btree object)",
		"#phrase(persistent object)",
		"#wsum(3 retrieval 1 store)",
		"object",
	}
	for _, q := range queries {
		r1, err := bt.Search(q, 0)
		if err != nil {
			t.Fatalf("btree %q: %v", q, err)
		}
		r2, err := mn.Search(q, 0)
		if err != nil {
			t.Fatalf("mneme %q: %v", q, err)
		}
		if len(r1) != len(r2) {
			t.Fatalf("%q: btree %d docs, mneme %d docs", q, len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i].Doc != r2[i].Doc || math.Abs(r1[i].Score-r2[i].Score) > 1e-12 {
				t.Fatalf("%q rank %d: btree %v mneme %v", q, i, r1[i], r2[i])
			}
		}
	}
}

func TestSearchRelevanceSanity(t *testing.T) {
	fs := newFS()
	buildTiny(t, fs, "tiny")
	_, mn := openBoth(t, fs, "tiny", BufferPlan{})
	defer mn.Close()
	res, err := mn.Search("information retrieval persistent object", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Doc 2 contains all four query terms.
	if len(res) == 0 || res[0].Doc != 2 {
		t.Fatalf("results = %v", res)
	}
}

func TestSearchTAATvsDAAT(t *testing.T) {
	fs := newFS()
	buildTiny(t, fs, "tiny")
	_, mn := openBoth(t, fs, "tiny", BufferPlan{MediumBytes: 1 << 16})
	defer mn.Close()
	for _, q := range []string{"information retrieval", "#and(object store)", "#or(files btree)"} {
		taat, err := mn.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		daat, err := mn.SearchDAAT(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(taat) != len(daat) {
			t.Fatalf("%q: %d vs %d docs", q, len(taat), len(daat))
		}
		for i := range taat {
			if taat[i].Doc != daat[i].Doc || math.Abs(taat[i].Score-daat[i].Score) > 1e-12 {
				t.Fatalf("%q rank %d: %v vs %v", q, i, taat[i], daat[i])
			}
		}
	}
}

func TestStopwordsAndStemmingInQueries(t *testing.T) {
	fs := newFS()
	docs := []index.Doc{
		{ID: 0, Text: "the cats are running quickly"},
		{ID: 1, Text: "dogs walk slowly"},
	}
	if _, err := Build(fs, "stem", &SliceDocs{Docs: docs}, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	e, err := Open(fs, "stem", BackendMneme)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// "cat" matches the indexed stem of "cats"; "the" is stopped.
	res, err := e.Search("the cat", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Doc != 0 {
		t.Fatalf("results = %v", res)
	}
	// A fully stopped query returns no results, no error.
	res, err = e.Search("the a of", 0)
	if err != nil || res != nil {
		t.Fatalf("stopped query = %v, %v", res, err)
	}
	// Parse errors surface.
	if _, err := e.Search("#bogus(x)", 0); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestCountersAndAccessLog(t *testing.T) {
	fs := newFS()
	buildTiny(t, fs, "tiny")
	e, err := Open(fs, "tiny", BackendMneme,
		WithAnalyzer(plainAnalyzer()), WithAccessLog(), WithTermUse())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Search("information retrieval", 0)
	c := e.Counters()
	if c.Queries != 1 || c.Lookups != 2 || c.Postings == 0 || c.BytesFetched == 0 {
		t.Fatalf("counters = %+v", c)
	}
	if len(e.AccessLog()) != 2 {
		t.Fatalf("AccessLog = %v", e.AccessLog())
	}
	if e.TermUse()["information"] != 1 || e.TermUse()["retrieval"] != 1 {
		t.Fatalf("TermUse = %v", e.TermUse())
	}
	// Unknown terms are not lookups.
	e.ResetCounters()
	e.Search("zebra", 0)
	if c := e.Counters(); c.Lookups != 0 {
		t.Fatalf("unknown term counted: %+v", c)
	}
}

func TestPoolPartitioningBySize(t *testing.T) {
	if PoolForSize(0) != PoolNameSmall || PoolForSize(12) != PoolNameSmall {
		t.Fatal("small threshold wrong")
	}
	if PoolForSize(13) != PoolNameMedium || PoolForSize(4096) != PoolNameMedium {
		t.Fatal("medium threshold wrong")
	}
	if PoolForSize(4097) != PoolNameLarge {
		t.Fatal("large threshold wrong")
	}
}

// TestMnemePoolPlacement builds a collection with rare, medium, and very
// frequent terms and confirms records land in the right pools.
func TestMnemePoolPlacement(t *testing.T) {
	fs := newFS()
	var docs []index.Doc
	for d := 0; d < 2000; d++ {
		text := "common " // appears in every doc: large list
		if d%3 == 0 {
			text += "middling " // ~667 docs: medium list
		}
		if d == 42 {
			text += "unicorn " // one doc: small list
		}
		text += fmt.Sprintf("filler%d", d)
		docs = append(docs, index.Doc{ID: uint32(d), Text: text})
	}
	if _, err := Build(fs, "pools", &SliceDocs{Docs: docs}, BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		t.Fatal(err)
	}
	e, err := Open(fs, "pools", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mb := e.Backend().(*mnemeBackend)
	check := func(term, wantPool string) {
		entry, ok := e.Dictionary().Lookup(term)
		if !ok {
			t.Fatalf("term %q missing", term)
		}
		pool, err := mb.Mneme().PoolOf(mnemeID(entry.Ref))
		if err != nil {
			t.Fatal(err)
		}
		if pool != wantPool {
			t.Fatalf("term %q (list %d bytes) in pool %q, want %q",
				term, entry.ListBytes, pool, wantPool)
		}
	}
	check("unicorn", PoolNameSmall)
	check("middling", PoolNameMedium)
	check("common", PoolNameLarge)
}

func TestBTreeRejectsUpdates(t *testing.T) {
	fs := newFS()
	buildTiny(t, fs, "tiny")
	bt, _ := Open(fs, "tiny", BackendBTree, WithAnalyzer(plainAnalyzer()))
	defer bt.Close()
	if _, err := bt.AddDocument("new doc"); !errors.Is(err, ErrNoUpdate) {
		t.Fatalf("AddDocument err = %v", err)
	}
	if err := bt.DeleteDocument(0, tinyDocs[0].Text); !errors.Is(err, ErrNoUpdate) {
		t.Fatalf("DeleteDocument err = %v", err)
	}
}

func TestAddDocumentIncremental(t *testing.T) {
	fs := newFS()
	buildTiny(t, fs, "tiny")
	e, err := Open(fs, "tiny", BackendMneme,
		WithAnalyzer(plainAnalyzer()),
		WithPlan(BufferPlan{MediumBytes: 1 << 16, LargeBytes: 1 << 18}))
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.AddDocument("novel retrieval techniques with inverted files")
	if err != nil {
		t.Fatal(err)
	}
	if id != 5 {
		t.Fatalf("new doc id = %d", id)
	}
	// The new doc is searchable, via old terms and new ones.
	res, err := e.Search("novel", 0)
	if err != nil || len(res) != 1 || res[0].Doc != 5 {
		t.Fatalf("search new term = %v, %v", res, err)
	}
	res, _ = e.Search("retrieval", 0)
	found := false
	for _, r := range res {
		if r.Doc == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("updated list misses new doc: %v", res)
	}
	// Stats updated.
	entry, _ := e.Dictionary().Lookup("retrieval")
	if entry.DF != 3 {
		t.Fatalf("retrieval DF = %d, want 3", entry.DF)
	}
	// Persist and reopen.
	if err := e.SaveMeta(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e2, err := Open(fs, "tiny", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	res, err = e2.Search("novel", 0)
	if err != nil || len(res) != 1 || res[0].Doc != 5 {
		t.Fatalf("after reopen = %v, %v", res, err)
	}
}

func TestAddDocumentCrossesPoolBoundaries(t *testing.T) {
	fs := newFS()
	// "pivot" starts with one tiny posting (small pool); repeated adds
	// grow its list through medium, checking ref stability handling.
	docs := []index.Doc{{ID: 0, Text: "pivot start"}}
	if _, err := Build(fs, "grow", &SliceDocs{Docs: docs}, BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		t.Fatal(err)
	}
	e, err := Open(fs, "grow", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	entry, _ := e.Dictionary().Lookup("pivot")
	mb := e.Backend().(*mnemeBackend)
	pool0, _ := mb.Mneme().PoolOf(mnemeID(entry.Ref))
	if pool0 != PoolNameSmall {
		t.Fatalf("initial pool = %q", pool0)
	}
	for i := 0; i < 40; i++ {
		// Several positions per doc grow the list quickly.
		if _, err := e.AddDocument(strings.Repeat("pivot ", 5)); err != nil {
			t.Fatal(err)
		}
	}
	entry, _ = e.Dictionary().Lookup("pivot")
	pool1, err := mb.Mneme().PoolOf(mnemeID(entry.Ref))
	if err != nil {
		t.Fatal(err)
	}
	if pool1 != PoolNameMedium {
		t.Fatalf("grown pool = %q (list %d bytes)", pool1, entry.ListBytes)
	}
	res, _ := e.Search("pivot", 0)
	if len(res) != 41 {
		t.Fatalf("pivot matches %d docs, want 41", len(res))
	}
}

func TestDeleteDocument(t *testing.T) {
	fs := newFS()
	buildTiny(t, fs, "tiny")
	e, err := Open(fs, "tiny", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.DeleteDocument(2, tinyDocs[2].Text); err != nil {
		t.Fatal(err)
	}
	res, _ := e.Search("information", 0)
	for _, r := range res {
		if r.Doc == 2 {
			t.Fatalf("deleted doc still retrieved: %v", res)
		}
	}
	if len(res) != 1 || res[0].Doc != 0 {
		t.Fatalf("results = %v", res)
	}
	entry, _ := e.Dictionary().Lookup("information")
	if entry.DF != 1 {
		t.Fatalf("DF after delete = %d", entry.DF)
	}
	// Deleting a nonexistent doc errors.
	if err := e.DeleteDocument(99, "x"); err == nil {
		t.Fatal("bad delete accepted")
	}
	// Deleting with text containing terms the doc never had is safe.
	if err := e.DeleteDocument(0, "zebra information"); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyIncrementalMatchesRebuild: adding documents one by one to
// Mneme yields the same search results as rebuilding from scratch.
func TestPropertyIncrementalMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	mkdoc := func() string {
		n := rng.Intn(12) + 3
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(vocab[rng.Intn(len(vocab))])
			sb.WriteByte(' ')
		}
		return sb.String()
	}
	var texts []string
	for i := 0; i < 40; i++ {
		texts = append(texts, mkdoc())
	}
	split := 25

	// Engine A: batch-build the first 25, then add 15 incrementally.
	fsA := newFS()
	var docsA []index.Doc
	for i := 0; i < split; i++ {
		docsA = append(docsA, index.Doc{ID: uint32(i), Text: texts[i]})
	}
	if _, err := Build(fsA, "c", &SliceDocs{Docs: docsA}, BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		t.Fatal(err)
	}
	ea, err := Open(fsA, "c", BackendMneme, WithAnalyzer(plainAnalyzer()), WithPlan(BufferPlan{MediumBytes: 1 << 16}))
	if err != nil {
		t.Fatal(err)
	}
	defer ea.Close()
	for i := split; i < len(texts); i++ {
		if _, err := ea.AddDocument(texts[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Engine B: batch-build all 40.
	fsB := newFS()
	var docsB []index.Doc
	for i := range texts {
		docsB = append(docsB, index.Doc{ID: uint32(i), Text: texts[i]})
	}
	if _, err := Build(fsB, "c", &SliceDocs{Docs: docsB}, BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		t.Fatal(err)
	}
	eb, err := Open(fsB, "c", BackendMneme, WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer eb.Close()

	for _, q := range []string{"alpha", "#and(beta gamma)", "delta epsilon", "#or(zeta theta)"} {
		ra, err := ea.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := eb.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("%q: %d vs %d results", q, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i].Doc != rb[i].Doc || math.Abs(ra[i].Score-rb[i].Score) > 1e-12 {
				t.Fatalf("%q rank %d: incremental %v rebuild %v", q, i, ra[i], rb[i])
			}
		}
	}
}

func TestOpenErrors(t *testing.T) {
	fs := newFS()
	if _, err := Open(fs, "missing", BackendBTree); err == nil {
		t.Fatal("Open missing collection succeeded")
	}
	buildTiny(t, fs, "tiny")
	if _, err := Open(fs, "tiny", BackendKind(9)); err == nil {
		t.Fatal("bad backend kind accepted")
	}
}

func TestBuildSingleBackend(t *testing.T) {
	fs := newFS()
	st, err := Build(fs, "only-mn", &SliceDocs{Docs: tinyDocs}, BuildOptions{
		Analyzer: plainAnalyzer(),
		Backends: []BackendKind{BackendMneme},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.BTreeBytes != 0 || st.MnemeBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := Open(fs, "only-mn", BackendMneme, WithAnalyzer(plainAnalyzer())); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fs, "only-mn", BackendBTree, WithAnalyzer(plainAnalyzer())); err == nil {
		t.Fatal("opened a backend that was never built")
	}
}

func TestEngineExplain(t *testing.T) {
	fs := newFS()
	buildTiny(t, fs, "tiny")
	_, mn := openBoth(t, fs, "tiny", BufferPlan{})
	defer mn.Close()
	q := "#and(information retrieval)"
	res, err := mn.Search(q, 1)
	if err != nil || len(res) == 0 {
		t.Fatalf("search: %v", err)
	}
	ex, err := mn.Explain(q, res[0].Doc)
	if err != nil {
		t.Fatal(err)
	}
	if d := ex.Belief - res[0].Score; d > 1e-12 || d < -1e-12 {
		t.Fatalf("explain %.6f vs score %.6f", ex.Belief, res[0].Score)
	}
	// Fully stopped queries explain gracefully.
	stemmed, err := Open(fs, "tiny", BackendMneme)
	if err != nil {
		t.Fatal(err)
	}
	defer stemmed.Close()
	ex, err = stemmed.Explain("the of", 0)
	if err != nil || ex == nil {
		t.Fatalf("stopped explain: %v", err)
	}
}

func BenchmarkEngineSearch(b *testing.B) {
	fs := newFS()
	var docs []index.Doc
	rng := rand.New(rand.NewSource(2))
	for d := 0; d < 2000; d++ {
		text := ""
		for w := 0; w < 60; w++ {
			text += fmt.Sprintf("w%d ", rng.Intn(1500))
		}
		docs = append(docs, index.Doc{ID: uint32(d), Text: text})
	}
	if _, err := Build(fs, "bench", &SliceDocs{Docs: docs}, BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		b.Fatal(err)
	}
	e, err := Open(fs, "bench", BackendMneme,
		WithAnalyzer(plainAnalyzer()),
		WithPlan(BufferPlan{SmallBytes: 12 << 10, MediumBytes: 64 << 10, LargeBytes: 256 << 10}))
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	queries := []string{"w1 w2 w3", "#and(w10 w20)", "#or(w5 w7 w9)"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(queries[i%len(queries)], 10); err != nil {
			b.Fatal(err)
		}
	}
}
