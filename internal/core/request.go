package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/inference"
	"repro/internal/resilience"
)

// Mode selects a Request's evaluation strategy.
type Mode uint8

const (
	// ModeTAAT evaluates term-at-a-time: every query term's posting
	// list is materialized and merged into the accumulator table — the
	// paper's protocol, and the zero value.
	ModeTAAT Mode = iota
	// ModeDAAT evaluates document-at-a-time over streaming iterators,
	// optionally under MaxScore pruning (Request.Prune).
	ModeDAAT
)

// String names the mode as the request API spells it.
func (m Mode) String() string {
	if m == ModeDAAT {
		return "daat"
	}
	return "taat"
}

// MarshalText implements encoding.TextMarshaler, so a Mode round-trips
// through a JSON request body as "taat" / "daat".
func (m Mode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler. The empty string
// selects ModeTAAT, matching the zero value.
func (m *Mode) UnmarshalText(b []byte) error {
	switch string(b) {
	case "", "taat":
		*m = ModeTAAT
	case "daat":
		*m = ModeDAAT
	default:
		return fmt.Errorf("core: unknown evaluation mode %q", b)
	}
	return nil
}

// Request is the single description of one retrieval call. Every entry
// point — the CLIs, the batch driver, the bench harness, and the
// inqueryd HTTP server (which unmarshals this struct directly from the
// request body) — reduces to a Request handed to Searcher.Run.
type Request struct {
	// Query is the query text in the INQUERY operator language.
	Query string `json:"query"`
	// TopK bounds the ranking depth (<= 0 ranks every matching
	// document). Transport layers may apply their own default before
	// the request reaches Run.
	TopK int `json:"top_k,omitempty"`
	// Mode selects term-at-a-time (default) or document-at-a-time
	// evaluation.
	Mode Mode `json:"mode,omitempty"`
	// Deadline, when positive, gives this request its own evaluation
	// budget: Run derives a context deadline and a cut-short query
	// returns its partial ranking with OutcomeDeadline. Encoded in
	// JSON as nanoseconds (a Go time.Duration).
	Deadline time.Duration `json:"deadline_ns,omitempty"`
	// Degraded lets this request survive unreadable inverted-list
	// records (scored as absent, tallied in Counters.CorruptRecords)
	// even on an engine opened without WithDegraded.
	Degraded bool `json:"degraded,omitempty"`
	// Prune enables MaxScore dynamic pruning for ModeDAAT requests
	// even on an engine opened without WithPruning. The top-k is
	// identical to exhaustive evaluation.
	Prune bool `json:"prune,omitempty"`
	// MinScore, when positive, is a score floor for pruned evaluation:
	// documents provably scoring below it are discarded even before
	// the top-k heap fills, so the ranking may come back shorter than
	// TopK. The shard coordinator seeds late shards with the running
	// merged k-th score; only documents that could never reach the
	// final global top-k are dropped, keeping the merge exact. Ignored
	// outside pruned ModeDAAT evaluation.
	MinScore float64 `json:"min_score,omitempty"`
}

// CanonicalKey is the request's evaluation identity: two requests with
// equal keys are guaranteed byte-identical complete (OutcomeOK)
// rankings on an unchanged index. It folds the whitespace-normalized
// query text, the evaluation mode, the ranking depth (every non-positive
// TopK means "rank all"), and — when set — the MinScore floor. Deadline,
// Degraded, and Prune are deliberately excluded: they change how hard a
// request tries and how failures are labelled, never what a complete
// undamaged ranking contains (MaxScore pruning is exact by contract).
// This single definition is what the result cache keys by and what the
// serving layer deduplicates batch entries with, so the two can never
// disagree about which requests are "the same query".
func (r Request) CanonicalKey() string {
	q := strings.Join(strings.Fields(r.Query), " ")
	k := r.TopK
	if k < 0 {
		k = 0
	}
	key := q + "\x00" + r.Mode.String() + "\x00" + strconv.Itoa(k)
	if r.MinScore > 0 {
		key += "\x00" + strconv.FormatFloat(r.MinScore, 'g', -1, 64)
	}
	return key
}

// Outcome classifies how a request ended — the label transport layers
// map onto their status taxonomy (inqueryd: ok/degraded → 200, shed →
// 429, deadline → 504, error → 400/503/500 by error class).
type Outcome string

const (
	// OutcomeOK is a complete ranking with no damage observed.
	OutcomeOK Outcome = "ok"
	// OutcomeDegraded is a complete pass that skipped corrupt records:
	// the ranking covers every readable list, and the skips are
	// tallied in the response counters.
	OutcomeDegraded Outcome = "degraded"
	// OutcomeDeadline is a partial ranking: the deadline (or the
	// caller's context) fired mid-evaluation and unscored terms read
	// as absent. The paired error chains to resilience.ErrDeadline.
	OutcomeDeadline Outcome = "deadline"
	// OutcomeShed means admission control rejected the request before
	// any evaluation. The paired error chains to resilience.ErrShed.
	OutcomeShed Outcome = "shed"
	// OutcomePartial is a sharded ranking missing one or more shards:
	// quorum was met, the returned ranking is exact over the shards
	// that answered, and Response.Coverage itemizes what was lost.
	// Single-engine requests never produce it.
	OutcomePartial Outcome = "partial"
	// OutcomeError is a hard failure: bad query syntax, storage
	// corruption on a strict engine, an open circuit breaker, or a
	// sharded request that lost its quorum.
	OutcomeError Outcome = "error"
)

// Partial reports whether the outcome carries results that may not
// reflect the complete collection.
func (o Outcome) Partial() bool {
	return o == OutcomeDegraded || o == OutcomeDeadline || o == OutcomePartial
}

// Coverage itemizes, for a response assembled from a sharded index,
// which shards contributed. Answered + Failed + Shed + BreakerOpen ==
// Shards; Degraded and the hedging tallies overlap Answered.
type Coverage struct {
	// Shards is the shard count of the index that served the request.
	Shards int `json:"shards"`
	// Answered is how many shards returned a usable ranking.
	Answered int `json:"answered"`
	// Degraded counts answered shards whose ranking was itself partial
	// (deadline slice expired or corrupt records skipped).
	Degraded int `json:"degraded,omitempty"`
	// Failed counts shards lost to hard errors after retries.
	Failed int `json:"failed,omitempty"`
	// Shed counts shards whose admission gate rejected the sub-query.
	Shed int `json:"shed,omitempty"`
	// BreakerOpen counts shards skipped outright because their
	// circuit breaker was open.
	BreakerOpen int `json:"breaker_open,omitempty"`
	// Hedged counts shards where a backup (hedged) sub-query was fired
	// after the straggler delay; HedgeWins counts those where the
	// backup came back first.
	Hedged    int `json:"hedged,omitempty"`
	HedgeWins int `json:"hedge_wins,omitempty"`
	// MissingShards lists the shard indexes absent from the ranking.
	MissingShards []int `json:"missing_shards,omitempty"`
}

// Response is a Request's full result: the ranking, the work this
// request performed (a per-request counter delta, not the engine
// aggregate), and the outcome label. Coverage is set only by the shard
// coordinator.
type Response struct {
	Results  []Result  `json:"results"`
	Counters Counters  `json:"counters"`
	Outcome  Outcome   `json:"outcome"`
	Coverage *Coverage `json:"coverage,omitempty"`
}

// outcomeOf derives the outcome label from a finished request's error
// and counter delta.
func outcomeOf(err error, delta Counters) Outcome {
	switch {
	case err == nil:
		if delta.CorruptRecords > 0 {
			return OutcomeDegraded
		}
		return OutcomeOK
	case errors.Is(err, resilience.ErrShed):
		return OutcomeShed
	case errors.Is(err, resilience.ErrDeadline),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return OutcomeDeadline
	default:
		return OutcomeError
	}
}

// Run evaluates one Request. It is the single query entry point: the
// Search/SearchDAAT/SearchCtx/SearchDAATCtx names are thin wrappers
// over it. The contract:
//
//   - If the engine has an admission gate (WithMaxInFlight) and the
//     request is shed, no evaluation happens: OutcomeShed, an error
//     chaining to resilience.ErrShed, and a counter delta recording
//     the shed (not a query).
//   - If Request.Deadline is positive, Run derives a per-request
//     context deadline from ctx (nil ctx allowed). A request cut short
//     — by that budget or by ctx itself — returns the partial ranking
//     with OutcomeDeadline and an error chaining to
//     resilience.ErrDeadline: a truncated ranking is always labelled.
//   - Request.Degraded and Request.Prune act as per-request overrides
//     OR-ed with the engine-level WithDegraded / WithPruning options.
//   - Response.Counters is this request's own work delta, so callers
//     (the HTTP layer, the bench) report per-request work without
//     diffing engine aggregates.
//   - On an engine opened WithResultCache, a request whose CanonicalKey
//     was answered completely (OutcomeOK) since the last index mutation
//     is served from memory: the delta records one query and one
//     ResultCacheHits and nothing else — no lookups, no fetched bytes,
//     no postings. Score-floored requests (MinScore > 0, the shard
//     coordinator's seeded sub-queries) bypass the cache entirely.
func (s *Searcher) Run(ctx context.Context, req Request) (Response, error) {
	if req.Deadline > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
		defer cancel()
	}
	rc := s.e.results
	cacheable := rc != nil && req.MinScore == 0
	var key string
	if cacheable {
		key = req.CanonicalKey()
		if res, ok := rc.get(key); ok {
			before := s.counters
			s.counters.Queries++
			s.counters.ResultCacheHits++
			delta := s.counters.Sub(before)
			s.flush()
			return Response{Results: res, Counters: delta, Outcome: OutcomeOK}, nil
		}
	}
	before := s.counters
	res, err := s.evaluate(ctx, req)
	delta := s.counters.Sub(before)
	resp := Response{Results: res, Counters: delta, Outcome: outcomeOf(err, delta)}
	if cacheable && err == nil && resp.Outcome == OutcomeOK {
		rc.put(key, res)
	}
	return resp, err
}

// evaluate runs the request through admission, normalization,
// reservation, and the selected evaluator. Counter flushing and
// iterator settlement happen on the way out, so the caller's delta is
// complete when evaluate returns.
func (s *Searcher) evaluate(ctx context.Context, req Request) ([]Result, error) {
	if g := s.e.gate; g != nil {
		if err := g.Acquire(ctx); err != nil {
			if errors.Is(err, resilience.ErrShed) {
				s.counters.Shed++
			} else {
				s.counters.DeadlineHits++
			}
			s.flush()
			return nil, fmt.Errorf("core: query not admitted: %w", err)
		}
		defer g.Release()
	}
	s.deadlined = false
	s.reqDegraded, s.reqPrune = req.Degraded, req.Prune
	defer func() { s.reqDegraded, s.reqPrune = false, false }()
	if ctx != nil && ctx.Done() != nil {
		s.ctx = ctx
		defer func() { s.ctx = nil }()
	}
	n, err := s.e.normalizeQuery(req.Query)
	if err != nil {
		return nil, err
	}
	s.counters.Queries++
	defer s.flush()
	defer s.finishIters()
	if n == nil {
		return nil, nil
	}
	pin := s.e.reserve(n)
	defer pin.Release()
	var res []Result
	switch {
	case req.Mode == ModeDAAT && (s.e.opts.Prune || s.reqPrune):
		res, err = inference.EvaluateMaxScoreFloor(n, s, req.TopK, req.MinScore)
	case req.Mode == ModeDAAT:
		res, err = inference.EvaluateDAAT(n, s, req.TopK)
	default:
		res, err = inference.EvaluateTAAT(n, s, req.TopK)
	}
	if err == nil && s.deadlined {
		err = fmt.Errorf("core: query cut short: %w (%w)", resilience.ErrDeadline, s.ctx.Err())
	}
	return res, err
}

// Run evaluates one Request on an implicit per-call Searcher. It is
// safe for concurrent use; see Searcher.Run for the contract.
func (e *Engine) Run(ctx context.Context, req Request) (Response, error) {
	return e.Acquire().Run(ctx, req)
}
