package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/index"
	"repro/internal/vfs"
)

// chunkedCollection builds a collection containing at least one list
// beyond MediumListMax, once plain and once chunked, on separate file
// systems.
func chunkedCollection(t *testing.T, chunk int) (plainFS, chunkedFS *vfs.FS) {
	t.Helper()
	mkdocs := func() *SliceDocs {
		docs := make([]string, 2500)
		for d := range docs {
			text := "heavy " // in every doc: list well beyond 4 KB
			if d%4 == 0 {
				text += "mid "
			}
			text += fmt.Sprintf("unique%d", d)
			docs[d] = text
		}
		s := &SliceDocs{}
		for i, text := range docs {
			s.Docs = append(s.Docs, index.Doc{ID: uint32(i), Text: text})
		}
		return s
	}
	plainFS = newFS()
	if _, err := Build(plainFS, "col", mkdocs(), BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		t.Fatal(err)
	}
	chunkedFS = newFS()
	if _, err := Build(chunkedFS, "col", mkdocs(), BuildOptions{
		Analyzer:        plainAnalyzer(),
		ChunkLargeLists: chunk,
	}); err != nil {
		t.Fatal(err)
	}
	return plainFS, chunkedFS
}

func openChunked(t *testing.T, fs *vfs.FS, chunk int) *Engine {
	t.Helper()
	e, err := Open(fs, "col", BackendMneme,
		WithAnalyzer(plainAnalyzer()),
		WithPlan(BufferPlan{SmallBytes: 12 << 10, MediumBytes: 64 << 10, LargeBytes: 256 << 10}),
		WithChunking(chunk))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestChunkedBuildMarksLargeLists(t *testing.T) {
	_, cfs := chunkedCollection(t, 1024)
	e := openChunked(t, cfs, 1024)
	defer e.Close()
	heavy, ok := e.Dictionary().Lookup("heavy")
	if !ok {
		t.Fatal("heavy missing")
	}
	if heavy.ListBytes <= MediumListMax {
		t.Fatalf("test needs a large list; got %d bytes", heavy.ListBytes)
	}
	if !isChunkedV2(heavy.Ref) {
		t.Fatal("large list not stored chunked")
	}
	mid, _ := e.Dictionary().Lookup("mid")
	if isChunked(mid.Ref) || isChunkedV2(mid.Ref) {
		t.Fatal("medium list unexpectedly chunked")
	}
}

func TestChunkedSearchParity(t *testing.T) {
	pfs, cfs := chunkedCollection(t, 1024)
	plain := openChunked(t, pfs, 0)
	defer plain.Close()
	chunked := openChunked(t, cfs, 1024)
	defer chunked.Close()

	for _, q := range []string{"heavy", "#and(heavy mid)", "heavy unique42", "#phrase(heavy mid)"} {
		rp, err := plain.Search(q, 20)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := chunked.Search(q, 20)
		if err != nil {
			t.Fatal(err)
		}
		if len(rp) != len(rc) {
			t.Fatalf("%q: %d vs %d results", q, len(rp), len(rc))
		}
		for i := range rp {
			if rp[i].Doc != rc[i].Doc || math.Abs(rp[i].Score-rc[i].Score) > 1e-12 {
				t.Fatalf("%q rank %d: plain %v chunked %v", q, i, rp[i], rc[i])
			}
		}
	}
}

func TestChunkedDAATStreams(t *testing.T) {
	pfs, cfs := chunkedCollection(t, 1024)
	plain := openChunked(t, pfs, 0)
	defer plain.Close()
	chunked := openChunked(t, cfs, 1024)
	defer chunked.Close()

	rp, err := plain.SearchDAAT("heavy mid", 15)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := chunked.SearchDAAT("heavy mid", 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp) != len(rc) {
		t.Fatalf("%d vs %d results", len(rp), len(rc))
	}
	for i := range rp {
		if rp[i].Doc != rc[i].Doc || math.Abs(rp[i].Score-rc[i].Score) > 1e-12 {
			t.Fatalf("rank %d: plain %v chunked %v", i, rp[i], rc[i])
		}
	}
	// The chunked engine's lookup counters must still be maintained.
	if c := chunked.Counters(); c.Lookups == 0 || c.Postings == 0 {
		t.Fatalf("chunked counters = %+v", c)
	}
}

func TestChunkedIncrementalUpdate(t *testing.T) {
	_, cfs := chunkedCollection(t, 1024)
	e := openChunked(t, cfs, 1024)
	defer e.Close()

	before, _ := e.Search("heavy", 0)
	id, err := e.AddDocument("heavy heavy heavy addition")
	if err != nil {
		t.Fatal(err)
	}
	after, _ := e.Search("heavy", 0)
	if len(after) != len(before)+1 {
		t.Fatalf("heavy matches %d -> %d", len(before), len(after))
	}
	found := false
	for _, r := range after {
		if r.Doc == id {
			found = true
		}
	}
	if !found {
		t.Fatal("new doc not retrievable through the chunked list")
	}
	// The updated record is still chunked.
	heavy, _ := e.Dictionary().Lookup("heavy")
	if !isChunked(heavy.Ref) && !isChunkedV2(heavy.Ref) {
		t.Fatal("update lost chunking")
	}
	// Deleting the document shrinks the list again.
	if err := e.DeleteDocument(id, "heavy heavy heavy addition"); err != nil {
		t.Fatal(err)
	}
	final, _ := e.Search("heavy", 0)
	if len(final) != len(before) {
		t.Fatalf("after delete: %d matches, want %d", len(final), len(before))
	}
	// Persistence across reopen.
	if err := e.SaveMeta(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e2 := openChunked(t, cfs, 1024)
	defer e2.Close()
	res, err := e2.Search("heavy", 0)
	if err != nil || len(res) != len(before) {
		t.Fatalf("after reopen: %d matches, %v", len(res), err)
	}
}
