package core

import (
	"encoding/json"

	"repro/internal/mneme"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// Snapshot is the unified observability record: the engine's aggregate
// work counters, the file system's I/O counters, and (for Mneme) the
// per-pool buffer counters, under one stable JSON encoding. It replaces
// the ad-hoc per-tool formatting of the three underlying stat types.
type Snapshot struct {
	Backend  string                       `json:"backend"`
	Counters Counters                     `json:"counters"`
	IO       vfs.Stats                    `json:"io"`
	Buffers  map[string]mneme.BufferStats `json:"buffers,omitempty"`
	// CorruptRecords mirrors Counters.CorruptRecords at the top level so
	// degraded-mode damage is visible without digging into the counter
	// block. Non-zero only for engines opened WithDegraded.
	CorruptRecords int64 `json:"corrupt_records,omitempty"`
	// Metrics is the engine's metrics-registry snapshot: work counters
	// plus deterministic distributions (fetch sizes, per-query lookups
	// and postings), sorted by name.
	Metrics obs.RegistrySnapshot `json:"metrics"`
	// Resilience summarizes retry recoveries, deadline and shed counts,
	// gate occupancy, and breaker states. Nil — and absent from the
	// JSON — unless a resilience option was given at Open.
	Resilience *ResilienceStats `json:"resilience,omitempty"`
	// Sharding summarizes a sharded index's scatter-gather state:
	// per-shard breaker/latency/outcome tallies plus hedging and
	// partial-result counts. Set only by the shard coordinator.
	Sharding *ShardingStats `json:"sharding,omitempty"`
	// NRT summarizes a near-real-time engine's write path: segment
	// roster, memtable occupancy, WAL depth, and flush/compaction
	// tallies. Set only by NRTEngine.Snapshot.
	NRT *NRTStats `json:"nrt,omitempty"`
	// Cache summarizes the hot-path caches (query-result and decoded
	// postings-block): traffic and occupancy. Nil — and absent from the
	// JSON — unless the engine was opened with WithResultCache or
	// WithBlockCache.
	Cache *CacheStats `json:"cache,omitempty"`
}

// ShardingStats is the coordinator-level block of a sharded index's
// snapshot.
type ShardingStats struct {
	// Shards is the shard count; Quorum is how many must answer.
	Shards int `json:"shards"`
	Quorum int `json:"quorum"`
	// Policy echoes the configured quorum policy string.
	Policy string `json:"policy"`
	// Partial counts requests answered with OutcomePartial; NoQuorum
	// counts requests failed for losing quorum; Hedged / HedgeWins
	// count backup sub-queries fired and backup wins.
	Partial   int64 `json:"partial"`
	NoQuorum  int64 `json:"no_quorum"`
	Hedged    int64 `json:"hedged"`
	HedgeWins int64 `json:"hedge_wins"`
	// Replicas is the per-shard replica count (0 when unreplicated).
	Replicas int `json:"replicas,omitempty"`
	// Failovers counts sub-query attempts that moved to a different
	// replica after a hard error; Repairs counts replicas rebuilt and
	// re-admitted; Quarantines counts replicas pulled from routing on
	// detected corruption or failed checksum verification.
	Failovers   int64 `json:"failovers,omitempty"`
	Repairs     int64 `json:"repairs,omitempty"`
	Quarantines int64 `json:"quarantines,omitempty"`
	// PerShard holds one entry per shard, in shard order.
	PerShard []ShardStat `json:"per_shard"`
}

// ShardStat is one shard's view from the coordinator.
type ShardStat struct {
	// Docs is the shard's resident document count.
	Docs int `json:"docs"`
	// Breaker is the shard breaker's state ("closed"/"open"/"half-open").
	Breaker string `json:"breaker"`
	// Answered / Degraded / Failed / Shed tally sub-query outcomes.
	Answered int64 `json:"answered"`
	Degraded int64 `json:"degraded,omitempty"`
	Failed   int64 `json:"failed,omitempty"`
	Shed     int64 `json:"shed,omitempty"`
	// P95Micros is the shard's current p95 sub-query latency estimate
	// (the hedging trigger), in microseconds.
	P95Micros int64 `json:"p95_micros,omitempty"`
	// Replicas holds per-replica health for replicated shards.
	Replicas []ReplicaStat `json:"replicas,omitempty"`
}

// ReplicaStat is one replica's health and routing view from the
// coordinator of a replicated sharded index.
type ReplicaStat struct {
	// Collection is the replica's on-store collection name.
	Collection string `json:"collection"`
	// State is the routing state ("healthy"/"suspect"/"dead"/
	// "quarantined"); Breaker is the replica breaker's state.
	State   string `json:"state"`
	Breaker string `json:"breaker"`
	// EwmaMicros is the replica's EWMA sub-query latency (the routing
	// preference input), in microseconds.
	EwmaMicros int64 `json:"ewma_micros,omitempty"`
	// ConsecErrs is the current consecutive-hard-error count.
	ConsecErrs int64 `json:"consec_errs,omitempty"`
	// Answered / Failed tally attempts served by this replica;
	// Repairs counts times it was rebuilt from a peer.
	Answered int64 `json:"answered,omitempty"`
	Failed   int64 `json:"failed,omitempty"`
	Repairs  int64 `json:"repairs,omitempty"`
}

// Snapshot captures the engine's current aggregate state. It is safe to
// call concurrently with searches; counters are read atomically (the
// snapshot as a whole is not a single atomic cut across all three
// sources).
func (e *Engine) Snapshot() Snapshot {
	c := e.Counters()
	return Snapshot{
		Backend:        e.kind.String(),
		Counters:       c,
		IO:             e.fs.Stats(),
		Buffers:        e.backend.BufferStats(),
		CorruptRecords: c.CorruptRecords,
		Metrics:        e.met.reg.Snapshot(),
		Resilience:     e.ResilienceStats(),
		Cache:          e.cacheStats(),
	}
}

// JSON renders the snapshot in its stable encoding: encoding/json
// emits struct fields in declaration order and sorts the buffer-pool
// map keys.
func (s Snapshot) JSON() ([]byte, error) {
	return json.Marshal(s)
}
