package core

import (
	"encoding/json"

	"repro/internal/mneme"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// Snapshot is the unified observability record: the engine's aggregate
// work counters, the file system's I/O counters, and (for Mneme) the
// per-pool buffer counters, under one stable JSON encoding. It replaces
// the ad-hoc per-tool formatting of the three underlying stat types.
type Snapshot struct {
	Backend  string                       `json:"backend"`
	Counters Counters                     `json:"counters"`
	IO       vfs.Stats                    `json:"io"`
	Buffers  map[string]mneme.BufferStats `json:"buffers,omitempty"`
	// CorruptRecords mirrors Counters.CorruptRecords at the top level so
	// degraded-mode damage is visible without digging into the counter
	// block. Non-zero only for engines opened WithDegraded.
	CorruptRecords int64 `json:"corrupt_records,omitempty"`
	// Metrics is the engine's metrics-registry snapshot: work counters
	// plus deterministic distributions (fetch sizes, per-query lookups
	// and postings), sorted by name.
	Metrics obs.RegistrySnapshot `json:"metrics"`
	// Resilience summarizes retry recoveries, deadline and shed counts,
	// gate occupancy, and breaker states. Nil — and absent from the
	// JSON — unless a resilience option was given at Open.
	Resilience *ResilienceStats `json:"resilience,omitempty"`
}

// Snapshot captures the engine's current aggregate state. It is safe to
// call concurrently with searches; counters are read atomically (the
// snapshot as a whole is not a single atomic cut across all three
// sources).
func (e *Engine) Snapshot() Snapshot {
	c := e.Counters()
	return Snapshot{
		Backend:        e.kind.String(),
		Counters:       c,
		IO:             e.fs.Stats(),
		Buffers:        e.backend.BufferStats(),
		CorruptRecords: c.CorruptRecords,
		Metrics:        e.met.reg.Snapshot(),
		Resilience:     e.ResilienceStats(),
	}
}

// JSON renders the snapshot in its stable encoding: encoding/json
// emits struct fields in declaration order and sorts the buffer-pool
// map keys.
func (s Snapshot) JSON() ([]byte, error) {
	return json.Marshal(s)
}
