package core

import (
	"time"

	"repro/internal/resilience"
)

// initResilience wires the engine's resilience options into the storage
// layers at Open time. Everything here is opt-in: with no resilience
// options the engine carries nil fields and the hot paths pay only nil
// checks, so default behaviour — including which error a fault surfaces
// as and the benchmark cost profile — is exactly the pre-resilience
// engine.
func (e *Engine) initResilience() {
	o := &e.opts
	if o.RetryAttempts > 1 {
		p := resilience.DefaultRetryPolicy()
		p.MaxAttempts = o.RetryAttempts
		e.retry = resilience.NewRetry(p)
		e.retry.OnRetry = func() { e.met.retried.Add(1) }
	}
	var bp resilience.BreakerPolicy
	if o.BreakerThreshold > 0 {
		bp = resilience.BreakerPolicy{
			FailureThreshold: o.BreakerThreshold,
			Cooldown:         o.BreakerCooldown,
		}
		if bp.Cooldown <= 0 {
			bp.Cooldown = resilience.DefaultBreakerPolicy().Cooldown
		}
	}
	if e.retry != nil || bp.FailureThreshold > 0 {
		switch b := e.backend.(type) {
		case *mnemeBackend:
			b.store.SetResilience(e.retry, bp)
		case *btreeBackend:
			g := &resilience.Guard{Label: "btree", Retry: e.retry}
			if bp.FailureThreshold > 0 {
				e.treeBreaker = resilience.NewBreaker(bp)
				g.Breaker = e.treeBreaker
			}
			b.tree.SetResilience(g)
		}
	}
	if o.MaxInFlight > 0 {
		e.gate = resilience.NewGate(o.MaxInFlight, o.QueueWait)
		e.gate.Observe = func(w time.Duration) { e.met.gateWait.Observe(int64(w)) }
	}
}

// resilienceConfigured reports whether any resilience option is active.
func (e *Engine) resilienceConfigured() bool {
	return e.gate != nil || e.retry != nil || e.opts.BreakerThreshold > 0
}

// breakerSnaps collects the backend's circuit-breaker snapshots, keyed
// by pool name ("btree" for the B-tree's single file breaker).
func (e *Engine) breakerSnaps() map[string]resilience.BreakerSnap {
	switch b := e.backend.(type) {
	case *mnemeBackend:
		return b.store.BreakerSnaps()
	case *btreeBackend:
		if e.treeBreaker != nil {
			return map[string]resilience.BreakerSnap{"btree": e.treeBreaker.Snap()}
		}
	}
	return nil
}

// ResilienceStats summarizes the engine's request-lifecycle resilience
// state for the unified snapshot: retry recoveries, deadline and shed
// counts, gate occupancy, and per-pool breaker states.
type ResilienceStats struct {
	RetriedReads int64                             `json:"retried_reads"`
	DeadlineHits int64                             `json:"deadline_hits"`
	Shed         int64                             `json:"shed"`
	MaxInFlight  int                               `json:"max_in_flight,omitempty"`
	InFlight     int                               `json:"in_flight,omitempty"`
	Breakers     map[string]resilience.BreakerSnap `json:"breakers,omitempty"`
}

// Health is an index's serving-fitness summary, reported by /healthz.
// Serving=false means the index cannot currently answer any query —
// for a single engine, every storage-pool breaker is open; for a
// sharded index, the open breakers make quorum unreachable.
type Health struct {
	// Docs is the index's document count.
	Docs int `json:"docs"`
	// Serving reports whether the index can answer queries right now.
	Serving bool `json:"serving"`
	// Breakers maps each storage pool (or shard) to its breaker state.
	// Empty when no breaker is armed.
	Breakers map[string]string `json:"breakers,omitempty"`
}

// Health reports the engine's serving fitness: it stops serving only
// when breakers are armed and every one of them is open (every pool
// fails fast, so no query can touch storage).
func (e *Engine) Health() Health {
	h := Health{Docs: e.NumDocs(), Serving: true}
	snaps := e.breakerSnaps()
	if len(snaps) == 0 {
		return h
	}
	h.Breakers = make(map[string]string, len(snaps))
	allOpen := true
	for name, s := range snaps {
		h.Breakers[name] = s.State
		if s.State != resilience.Open.String() {
			allOpen = false
		}
	}
	h.Serving = !allOpen
	return h
}

// ResilienceStats returns the current resilience summary, or nil when
// no resilience option (WithMaxInFlight, WithRetry, WithBreaker) was
// given — which keeps Snapshot JSON byte-identical for plain engines.
func (e *Engine) ResilienceStats() *ResilienceStats {
	if !e.resilienceConfigured() {
		return nil
	}
	c := e.Counters()
	rs := &ResilienceStats{
		RetriedReads: c.RetriedReads,
		DeadlineHits: c.DeadlineHits,
		Shed:         c.Shed,
		Breakers:     e.breakerSnaps(),
	}
	if e.gate != nil {
		rs.MaxInFlight = e.gate.Max()
		rs.InFlight = e.gate.InFlight()
	}
	return rs
}
