# Build and test tiers. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: all build test race fmt check bench

all: check

# Tier 1: everything compiles and the unit suite passes.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Concurrency tier: static checks plus the unit suite under the race
# detector (covers the engine smoke tests and the Mneme pin/evict tests).
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Formatting gate: fails if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: fmt test race

# Quick pass over the paper-reproduction benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
