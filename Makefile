# Build and test tiers. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: all build test race fmt vet faults check bench

all: check

# Tier 1: everything compiles and the unit suite passes.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Concurrency tier: the unit suite under the race detector (covers the
# engine smoke tests and the Mneme pin/evict tests).
race:
	$(GO) test -race ./...

# Static analysis gate.
vet:
	$(GO) vet ./...

# Robustness tier: the fault-injection, crash-recovery, checksum, and
# degraded-mode suites across the storage stack, run with fresh counts.
faults:
	$(GO) test -count=1 -run 'Fault|Crash|Corrupt|Torn|Rot|Fsck|Degraded|Rollback|CloseHygiene|FlipByte' \
		./internal/vfs/ ./internal/mneme/ ./internal/btree/ ./internal/core/

# Formatting gate: fails if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: fmt vet test faults race

# Quick pass over the paper-reproduction benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
