# Build and test tiers. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: all build test race fmt vet lint faults fuzz soak chaos nrt check bench ablate gobench serve-smoke serve-bench

all: check

# Tier 1: everything compiles and the unit suite passes.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Concurrency tier: the unit suite under the race detector (covers the
# engine smoke tests and the Mneme pin/evict tests).
race:
	$(GO) test -race ./...

# Static analysis gate.
vet:
	$(GO) vet ./...

# Deeper static analysis: staticcheck when the host has it, with a
# visible skip otherwise (the CI image is stdlib-only, so the gate
# must not require fetching a binary).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; go vet only (install honnef.co/go/tools/cmd/staticcheck for the full gate)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping vulnerability scan (install golang.org/x/vuln/cmd/govulncheck for the full gate)"; \
	fi

# Robustness tier: the fault-injection, crash-recovery, checksum, and
# degraded-mode suites across the storage stack, run with fresh counts.
faults:
	$(GO) test -count=1 -run 'Fault|Crash|Corrupt|Torn|Rot|Fsck|Degraded|Rollback|CloseHygiene|FlipByte' \
		./internal/vfs/ ./internal/mneme/ ./internal/btree/ ./internal/core/

# Formatting gate: fails if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Fuzz smoke: a short randomized pass over the record codec and the
# B-tree op-sequence fuzzer. Longer sessions: go test -fuzz <name>
# -fuzztime 5m in the package directory.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzPostingsRoundTrip -fuzztime 5s ./internal/postings/
	$(GO) test -run '^$$' -fuzz FuzzBitmapRoundTrip -fuzztime 5s ./internal/postings/
	$(GO) test -run '^$$' -fuzz FuzzBTreeInsertLookup -fuzztime 5s ./internal/btree/
	$(GO) test -run '^$$' -fuzz FuzzWALRoundTrip -fuzztime 5s ./internal/mneme/
	$(GO) test -run '^$$' -fuzz FuzzMemtableIterator -fuzztime 5s ./internal/core/

# Chaos soak: randomized-but-seeded fault schedules (probabilistic,
# periodic, and transient injection) over the full query matrix on both
# backends, with retry, breaker, admission gate, and per-query deadlines
# all engaged. Asserts the resilience invariant: every query either
# matches the clean-run ranking exactly or carries a typed shed /
# deadline / degraded label — never a silent wrong result. SOAK_ROUNDS
# scales the schedule (default 4 in-test; ~5s at 1000).
# The shard-kill storm rides along: a seeded schedule crash-freezes a
# random shard's store each round and asserts every scatter-gather
# answer is either the exact full ranking or a typed partial whose
# Coverage block accounts for every shard — never a silent wrong result.
soak:
	SOAK_ROUNDS=1000 $(GO) test -count=1 -run TestChaosSoak ./internal/core/
	SOAK_ROUNDS=40 $(GO) test -count=1 -run 'TestShardKillStorm|TestShardCrashFreeze' ./internal/shard/
	SOAK_ROUNDS=40 $(GO) test -count=1 -run TestReplicaKillStorm ./internal/shard/
	SOAK_ROUNDS=8 $(GO) test -count=1 -race -run TestNRTStormIngestQueryFaults ./internal/core/

# Replica chaos, quick tier: a seeded replica-kill + bit-rot storm over
# a 4-shard x 2-replica set under the race detector, plus the online-
# repair throughput proof (queries must keep flowing while a quarantined
# replica is rebuilt from its peer). Every query during the storm must
# return the full, exact ranking — zero failed or partial answers while
# one replica of any shard survives. The longer unraced storm lives in
# `make soak`; this tier is short enough for `make check`.
chaos:
	SOAK_ROUNDS=10 $(GO) test -count=1 -race \
		-run 'TestReplicaKillStorm|TestReplicaRepairOnlineThroughput|TestReplicaFailoverGoroutineHygiene' \
		./internal/shard/

# Near-real-time tier: the write-path proof suite. Differential oracle
# (quiesced rankings byte-identical to the batch builder, mid-ingest
# scores within 1e-9, both backends, all three evaluation modes),
# crash-point sweep over every WAL/flush/compact write+sync ordinal
# (old-or-new state, zero acked loss), memtable/WAL unit + fuzz
# regression corpora, close-mid-flush goroutine-leak check, the
# /v1/ingest endpoint, and both CLI lifecycles (inqueryd -nrt,
# inquery-index -nrt build + WAL replay).
nrt:
	$(GO) test -count=1 -run 'TestNRT|TestMemtable|FuzzMemtableIterator' ./internal/core/
	$(GO) test -count=1 -run 'TestWAL|FuzzWALRoundTrip' ./internal/mneme/
	$(GO) test -count=1 -run TestIngestEndpoint ./internal/serve/
	$(GO) test -count=1 -run TestServeSmokeNRT ./cmd/inqueryd/
	$(GO) test -count=1 -run TestNRTBuildAndReplay ./cmd/inquery-index/

# Serving smoke: build the real inqueryd + loadgen binaries, boot the
# server on loopback over a self-built synthetic index, run a short
# closed-loop burst, assert /metrics and /snapshot respond, then SIGTERM
# and require a clean drain (exit 0) — a leaked worker or stuck
# shutdown hangs and fails here.
# Covers the single-engine boot, the sharded scatter-gather boot
# (-shards 2 -quorum 'quorum(1)'), the replicated boot (-shards 2
# -replicas 2 with per-replica health in /snapshot), and the
# near-real-time boot (-nrt with a live POST /v1/ingest made searchable
# on the next request).
serve-smoke:
	$(GO) test -count=1 -run 'TestServeSmoke|TestServeSmokeSharded|TestServeSmokeReplicated|TestServeSmokeNRT' ./cmd/inqueryd/

check: fmt lint test faults race fuzz soak chaos nrt serve-smoke

# Query-latency regression gate: runs the standard query mixes over both
# backends (cmd/repro -bench) and diffs the per-stage p95 quantiles
# against the committed baseline, failing on >20% regression. The
# quantiles come from the deterministic cost model, so this catches
# algorithmic regressions (more I/O, more faults, more postings), not
# host noise. Regenerate the baseline after intentional changes with:
#   $(GO) run ./cmd/repro -scale 0.25 -bench -benchout testdata/bench_baseline.json
bench:
	$(GO) run ./cmd/repro -scale 0.25 -bench -benchout BENCH_query.json \
		-baseline testdata/bench_baseline.json

# Codec x cache ablation matrix: the same collection built under each
# posting-codec policy (v1 streams, v2 blocks, adaptive with the v3
# bitmap upgrade), each queried with the hot-path caches off and on.
# Writes the ABLATION_codec.json artifact EXPERIMENTS.md references and
# prints the table; deterministic (simulated cost model), so the JSON
# is byte-stable across runs at a fixed scale.
ablate:
	$(GO) run ./cmd/repro -scale 0.25 -ablate-codec -ablateout ABLATION_codec.json

# Serving-throughput gate: boot inqueryd over the synthetic CACM index
# three times — unsharded (serve-x1) and document-partitioned into 2 and
# 4 shards behind the scatter-gather coordinator — drive a closed-loop
# burst with loadgen after each boot, accumulate the rows into one
# report (-append), and diff achieved QPS, shed rate, and latency
# quantiles against the committed baseline on the x4 run.
# Two replicated boots follow (-shards 4 -replicas 2): a healthy run
# (serve-x4r2) and a run where the server crash-freezes one replica of
# every shard 2s in (-chaos-kill-replica, label serve-x4r2-kill). The
# killed run is gated by -kill-gate: zero transport errors, zero HTTP
# 5xx, and QPS at least 90% of the healthy row — the failover router
# must absorb the kill without surfacing it to clients.
# These are wall-clock numbers (unlike the simulated query bench), so
# the tolerance is deliberately loose — it catches collapses, not
# percent-level drift — and the target is NOT part of `make check`.
# Regenerate the baseline on a quiet host with:
#   make serve-bench SERVE_BENCH_OUT=testdata/serve_baseline.json SERVE_BENCH_BASE=
SERVE_BENCH_OUT ?= BENCH_serve.json
SERVE_BENCH_BASE ?= testdata/serve_baseline.json
serve-bench:
	$(GO) build -o /tmp/repro-inqueryd ./cmd/inqueryd
	$(GO) build -o /tmp/repro-loadgen ./cmd/loadgen
	@rm -f $(SERVE_BENCH_OUT)
	for N in 1 2 4; do \
		/tmp/repro-inqueryd -synthetic CACM -scale 0.05 -shards $$N \
			-addr 127.0.0.1:7933 & \
		SRV=$$!; \
		GATE=""; \
		if [ "$$N" = 4 ] && [ -n "$(SERVE_BENCH_BASE)" ]; then \
			GATE="-baseline $(SERVE_BENCH_BASE) -tol 1.0"; fi; \
		/tmp/repro-loadgen -target http://127.0.0.1:7933 -collection CACM -scale 0.05 \
			-duration 5s -c 8 -label serve-x$$N -append -out $(SERVE_BENCH_OUT) $$GATE; \
		RC=$$?; kill -TERM $$SRV; wait $$SRV || true; \
		[ $$RC -eq 0 ] || exit $$RC; \
	done
	for KILL in "" "-chaos-kill-replica 2s"; do \
		LABEL=serve-x4r2; GATE=""; \
		if [ -n "$$KILL" ]; then \
			LABEL=serve-x4r2-kill; GATE="-kill-gate serve-x4r2 -kill-ratio 0.9"; fi; \
		/tmp/repro-inqueryd -synthetic CACM -scale 0.05 -shards 4 -replicas 2 $$KILL \
			-addr 127.0.0.1:7933 & \
		SRV=$$!; \
		/tmp/repro-loadgen -target http://127.0.0.1:7933 -collection CACM -scale 0.05 \
			-duration 5s -c 8 -label $$LABEL -append -out $(SERVE_BENCH_OUT) $$GATE; \
		RC=$$?; kill -TERM $$SRV; wait $$SRV || true; \
		[ $$RC -eq 0 ] || exit $$RC; \
	done

# Quick pass over the paper-reproduction go benchmarks.
gobench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
