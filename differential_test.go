package repro

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/textproc"
)

// diffScale keeps the differential suite fast while still covering every
// collection and query set of the paper matrix.
const diffScale = 0.1

// openPair opens the same built collection on both storage backends,
// Mneme under its paper buffer plan.
func openPair(t *testing.T, built *experiments.Built, extra ...core.Option) (bt, mn *core.Engine) {
	t.Helper()
	an := textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	btOpts := append([]core.Option{core.WithAnalyzer(an)}, extra...)
	bt, err := core.Open(built.FS, built.Col.Name, core.BackendBTree, btOpts...)
	if err != nil {
		t.Fatalf("open btree: %v", err)
	}
	mnOpts := append([]core.Option{
		core.WithAnalyzer(an), core.WithPlan(experiments.PlanFor(built)),
	}, extra...)
	mn, err = core.Open(built.FS, built.Col.Name, core.BackendMneme, mnOpts...)
	if err != nil {
		bt.Close()
		t.Fatalf("open mneme: %v", err)
	}
	return bt, mn
}

// assertSameResults requires identical rankings and doc counts, with
// scores equal to within 1e-9 (belief arithmetic is the same float64
// sequence on both backends; the tolerance only absorbs printing-level
// differences, not reordering).
func assertSameResults(t *testing.T, label string, r1, r2 []core.Result) {
	t.Helper()
	if len(r1) != len(r2) {
		t.Fatalf("%s: doc counts differ: btree %d vs mneme %d", label, len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Doc != r2[i].Doc {
			t.Fatalf("%s: rank %d: btree doc %d vs mneme doc %d", label, i, r1[i].Doc, r2[i].Doc)
		}
		if math.Abs(r1[i].Score-r2[i].Score) > 1e-9 {
			t.Fatalf("%s: rank %d (doc %d): scores differ: %.12f vs %.12f",
				label, i, r1[i].Doc, r1[i].Score, r2[i].Score)
		}
	}
}

// TestDifferentialBackends runs the full paper query mix — every
// (collection, query set) row of the evaluation matrix — on the same
// index image under both the B-tree and Mneme backends and requires
// identical rankings. The storage manager must be invisible to the
// retrieval engine; any divergence is a storage bug, not a tuning
// difference.
func TestDifferentialBackends(t *testing.T) {
	lab := experiments.NewLab(diffScale)
	for _, row := range matrixRows {
		built, err := lab.Collection(row.col)
		if err != nil {
			t.Fatal(err)
		}
		qs := built.Col.QuerySets[row.qs]
		t.Run(fmt.Sprintf("%s_qs%s", row.col, qs.Name), func(t *testing.T) {
			bt, mn := openPair(t, built)
			defer bt.Close()
			defer mn.Close()
			for _, q := range built.Col.GenQueries(qs) {
				r1, err := bt.Search(q.Text, 0)
				if err != nil {
					t.Fatalf("btree %s: %v", q.ID, err)
				}
				r2, err := mn.Search(q.Text, 0)
				if err != nil {
					t.Fatalf("mneme %s: %v", q.ID, err)
				}
				assertSameResults(t, q.ID, r1, r2)
			}
		})
	}
}

// TestDifferentialBackendsDegraded repeats the differential run with
// both engines opened WithDegraded but no faults injected: degraded
// mode must be a pure error-handling policy with zero effect on healthy
// results, and must count zero corrupt records.
func TestDifferentialBackendsDegraded(t *testing.T) {
	lab := experiments.NewLab(diffScale)
	for _, row := range matrixRows {
		built, err := lab.Collection(row.col)
		if err != nil {
			t.Fatal(err)
		}
		qs := built.Col.QuerySets[row.qs]
		t.Run(fmt.Sprintf("%s_qs%s", row.col, qs.Name), func(t *testing.T) {
			bt, mn := openPair(t, built, core.WithDegraded())
			defer bt.Close()
			defer mn.Close()
			for _, q := range built.Col.GenQueries(qs) {
				r1, err := bt.Search(q.Text, 0)
				if err != nil {
					t.Fatalf("btree %s: %v", q.ID, err)
				}
				r2, err := mn.Search(q.Text, 0)
				if err != nil {
					t.Fatalf("mneme %s: %v", q.ID, err)
				}
				assertSameResults(t, q.ID, r1, r2)
			}
			if n := bt.Counters().CorruptRecords; n != 0 {
				t.Fatalf("btree: %d corrupt records counted with no faults injected", n)
			}
			if n := mn.Counters().CorruptRecords; n != 0 {
				t.Fatalf("mneme: %d corrupt records counted with no faults injected", n)
			}
		})
	}
}

// diffTopK is the ranking depth of the pruning differential: deep
// enough that eligible queries carry several terms past the heap-fill
// point, shallow enough that pruning actually engages.
const diffTopK = 10

// TestDifferentialMaxScore runs the full paper query matrix with
// MaxScore pruning enabled (WithPruning) and requires the top-k to
// equal exhaustive document-at-a-time evaluation — same documents, same
// order, same scores — on both backends, and to agree with
// term-at-a-time evaluation at the same depth. Pruning is a pure
// evaluation-order optimization; any ranking difference is a bug in the
// bound arithmetic, not a tuning knob.
func TestDifferentialMaxScore(t *testing.T) {
	lab := experiments.NewLab(diffScale)
	for _, row := range matrixRows {
		built, err := lab.Collection(row.col)
		if err != nil {
			t.Fatal(err)
		}
		qs := built.Col.QuerySets[row.qs]
		t.Run(fmt.Sprintf("%s_qs%s", row.col, qs.Name), func(t *testing.T) {
			bt, mn := openPair(t, built)
			defer bt.Close()
			defer mn.Close()
			btP, mnP := openPair(t, built, core.WithPruning())
			defer btP.Close()
			defer mnP.Close()
			for _, q := range built.Col.GenQueries(qs) {
				exact, err := bt.SearchDAAT(q.Text, diffTopK)
				if err != nil {
					t.Fatalf("btree daat %s: %v", q.ID, err)
				}
				for label, eng := range map[string]*core.Engine{"btree": btP, "mneme": mnP} {
					pruned, err := eng.SearchDAAT(q.Text, diffTopK)
					if err != nil {
						t.Fatalf("%s pruned %s: %v", label, q.ID, err)
					}
					assertSameResults(t, q.ID+"/"+label+"-pruned", exact, pruned)
				}
				// TAAT cross-check, skipping proximity queries: DAAT
				// bounds a proximity node's df by its rarest child (see
				// daat.go collectLeaves) where TAAT counts exact window
				// matches, so the two paths agree only on queries
				// without #phrase/#odN/#uwN.
				if !strings.Contains(q.Text, "#phrase") &&
					!strings.Contains(q.Text, "#od") && !strings.Contains(q.Text, "#uw") {
					taat, err := mn.Search(q.Text, diffTopK)
					if err != nil {
						t.Fatalf("mneme taat %s: %v", q.ID, err)
					}
					assertSameResults(t, q.ID+"/taat", exact, taat)
				}
			}
		})
	}
}

// TestDifferentialMaxScoreDegraded repeats the pruning differential
// with the pruned engines opened WithDegraded (no faults injected):
// the degraded policy must not perturb pruned rankings either.
func TestDifferentialMaxScoreDegraded(t *testing.T) {
	lab := experiments.NewLab(diffScale)
	for _, row := range matrixRows {
		built, err := lab.Collection(row.col)
		if err != nil {
			t.Fatal(err)
		}
		qs := built.Col.QuerySets[row.qs]
		t.Run(fmt.Sprintf("%s_qs%s", row.col, qs.Name), func(t *testing.T) {
			bt, mn := openPair(t, built)
			defer bt.Close()
			defer mn.Close()
			btP, mnP := openPair(t, built, core.WithPruning(), core.WithDegraded())
			defer btP.Close()
			defer mnP.Close()
			for _, q := range built.Col.GenQueries(qs) {
				exact, err := mn.SearchDAAT(q.Text, diffTopK)
				if err != nil {
					t.Fatalf("mneme daat %s: %v", q.ID, err)
				}
				for label, eng := range map[string]*core.Engine{"btree": btP, "mneme": mnP} {
					pruned, err := eng.SearchDAAT(q.Text, diffTopK)
					if err != nil {
						t.Fatalf("%s pruned %s: %v", label, q.ID, err)
					}
					assertSameResults(t, q.ID+"/"+label+"-pruned-degraded", exact, pruned)
				}
			}
			if n := btP.Counters().CorruptRecords + mnP.Counters().CorruptRecords; n != 0 {
				t.Fatalf("%d corrupt records counted with no faults injected", n)
			}
		})
	}
}
