package repro

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// goldenScale is fixed (never env-configurable): golden bytes are only
// comparable when the collections are generated at one exact scale.
const goldenScale = 0.1

// checkGolden compares got against testdata/golden/name byte-for-byte,
// or rewrites the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (run with -update after intentional schema changes):\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenSnapshot pins the JSON encoding of core.Snapshot — field
// names, declaration order, and the deterministic values produced by a
// fixed workload — for both backends. Every quantity in a snapshot is a
// count or byte total (never wall-clock), which is what makes the full
// value, not just the schema, golden-testable.
func TestGoldenSnapshot(t *testing.T) {
	lab := experiments.NewLab(goldenScale)
	built, err := lab.Collection("CACM")
	if err != nil {
		t.Fatal(err)
	}
	bt, mn := openPair(t, built)
	defer bt.Close()
	defer mn.Close()
	qs := built.Col.QuerySets[0]
	for _, q := range built.Col.GenQueries(qs) {
		if _, err := bt.Search(q.Text, 0); err != nil {
			t.Fatalf("btree %s: %v", q.ID, err)
		}
		if _, err := mn.Search(q.Text, 0); err != nil {
			t.Fatalf("mneme %s: %v", q.ID, err)
		}
	}
	btJSON, err := json.MarshalIndent(bt.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	mnJSON, err := json.MarshalIndent(mn.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot_btree.json", append(btJSON, '\n'))
	checkGolden(t, "snapshot_mneme.json", append(mnJSON, '\n'))

	// The compact Snapshot.JSON() encoding must agree with the golden
	// modulo whitespace — same fields, same order.
	compact, err := bt.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, btJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compact, buf.Bytes()) {
		t.Fatalf("Snapshot.JSON() disagrees with MarshalIndent modulo whitespace:\n%s\nvs\n%s", compact, buf.Bytes())
	}
}

// TestGoldenBenchReport pins the BENCH_query.json schema: runs the same
// bench the CLI runs (same marshaling, same trailing newline) at the
// golden scale and requires byte identity with the committed file. This
// is both the determinism check (quantiles come from the simulated cost
// model, never wall-clock) and the field-ordering contract for any
// consumer parsing the report.
func TestGoldenBenchReport(t *testing.T) {
	if testing.Short() {
		t.Skip("bench report golden runs the full query matrix")
	}
	lab := experiments.NewLab(goldenScale)
	report, err := lab.RunBench(nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "bench_report.json", append(data, '\n'))
}
