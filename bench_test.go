// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation as testing.B benchmarks, reporting the paper's
// metrics through b.ReportMetric:
//
//	BenchmarkTable1_IndexBuild        index construction + file sizes (Table 1)
//	BenchmarkTable2_BufferPlan        buffer sizing heuristics (Table 2)
//	BenchmarkTable3_WallClock/...     the full 7-row x 3-system matrix (Table 3)
//	BenchmarkTable4_SystemIO/...      system CPU + I/O times (Table 4)
//	BenchmarkTable5_IOStats/...       I, A, B I/O statistics (Table 5)
//	BenchmarkTable6_HitRates/...      per-pool buffer hit rates (Table 6)
//	BenchmarkFigure1_ListSizeDistribution
//	BenchmarkFigure2_AccessBySize
//	BenchmarkFigure3_BufferSweep
//	BenchmarkAblation*                design-decision ablations
//
// Collection scale defaults to 0.25 so the full suite completes in a
// few minutes; set REPRO_BENCH_SCALE=1.0 for the full reproduction (the
// numbers cmd/repro prints). ns/op is real host time for the measured
// operation; *_s metrics are the deterministic 1993-machine estimates.
package repro

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

func benchScale() float64 {
	if v := os.Getenv("REPRO_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.25
}

var (
	labOnce sync.Once
	labVal  *experiments.Lab
)

func benchLab() *experiments.Lab {
	labOnce.Do(func() {
		labVal = experiments.NewLab(benchScale())
	})
	return labVal
}

// matrixRows mirrors the paper's seven (collection, query set) rows.
var matrixRows = []struct {
	col string
	qs  int
}{
	{"CACM", 0}, {"CACM", 1}, {"CACM", 2},
	{"Legal", 0}, {"Legal", 1},
	{"TIPSTER1", 0},
	{"TIPSTER", 0},
}

var systems = []experiments.System{
	experiments.SysBTree, experiments.SysMnemeNoCache, experiments.SysMnemeCache,
}

func sysLabel(s experiments.System) string {
	switch s {
	case experiments.SysBTree:
		return "BTree"
	case experiments.SysMnemeNoCache:
		return "MnemeNoCache"
	default:
		return "MnemeCache"
	}
}

// BenchmarkTable1_IndexBuild measures index construction for the CACM
// collection (both backends on a fresh file system each iteration) and
// reports the Table 1 file sizes.
func BenchmarkTable1_IndexBuild(b *testing.B) {
	col, ok := collection.ByName("CACM", benchScale())
	if !ok {
		b.Fatal("no CACM spec")
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	var stats *core.BuildStats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize})
		st, err := core.Build(fs, col.Name, col.Stream(), core.BuildOptions{Analyzer: an})
		if err != nil {
			b.Fatal(err)
		}
		stats = st
	}
	b.ReportMetric(float64(stats.Records), "records")
	b.ReportMetric(float64(stats.BTreeBytes)/1024, "btree_kb")
	b.ReportMetric(float64(stats.MnemeBytes)/1024, "mneme_kb")
}

// BenchmarkTable2_BufferPlan regenerates the buffer-size table.
func BenchmarkTable2_BufferPlan(b *testing.B) {
	lab := benchLab()
	for _, row := range matrixRows {
		if _, err := lab.Collection(row.col); err != nil { // build outside the timer
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = lab.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(t.Rows)), "rows")
}

// benchRun measures one (collection, query set, system) batch run and
// reports its model metrics.
func benchRun(b *testing.B, col string, qs int, sys experiments.System) *experiments.RunResult {
	lab := benchLab()
	if _, err := lab.Collection(col); err != nil { // build outside the timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var r *experiments.RunResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = lab.RunFresh(col, qs, sys)
		if err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// BenchmarkTable3_WallClock runs the complete evaluation matrix — the
// paper's headline comparison.
func BenchmarkTable3_WallClock(b *testing.B) {
	for _, row := range matrixRows {
		for _, sys := range systems {
			name := fmt.Sprintf("%s_qs%d/%s", row.col, row.qs+1, sysLabel(sys))
			b.Run(name, func(b *testing.B) {
				r := benchRun(b, row.col, row.qs, sys)
				b.ReportMetric(r.Wall.Seconds(), "wall_model_s")
			})
		}
	}
}

// BenchmarkTable4_SystemIO reports the Table 4 metric for the Legal
// collection's richer query set, all three systems.
func BenchmarkTable4_SystemIO(b *testing.B) {
	for _, sys := range systems {
		b.Run(sysLabel(sys), func(b *testing.B) {
			r := benchRun(b, "Legal", 1, sys)
			b.ReportMetric(r.SysIO.Seconds(), "sysio_model_s")
			b.ReportMetric(r.UserCPU.Seconds(), "usercpu_model_s")
		})
	}
}

// BenchmarkTable5_IOStats reports I (disk blocks), A (file accesses per
// lookup), and B (Kbytes read) for the TIPSTER collection.
func BenchmarkTable5_IOStats(b *testing.B) {
	for _, sys := range systems {
		b.Run(sysLabel(sys), func(b *testing.B) {
			r := benchRun(b, "TIPSTER", 0, sys)
			b.ReportMetric(float64(r.IO.DiskReads), "I_blocks")
			b.ReportMetric(r.A(), "A_acc/lookup")
			b.ReportMetric(float64(r.IO.BytesRead)/1024, "B_kb")
		})
	}
}

// BenchmarkTable6_HitRates reports per-pool buffer hit rates for the
// Mneme-with-cache runs.
func BenchmarkTable6_HitRates(b *testing.B) {
	for _, row := range matrixRows {
		name := fmt.Sprintf("%s_qs%d", row.col, row.qs+1)
		b.Run(name, func(b *testing.B) {
			r := benchRun(b, row.col, row.qs, experiments.SysMnemeCache)
			b.ReportMetric(r.Buffers["small"].HitRate(), "small_rate")
			b.ReportMetric(r.Buffers["medium"].HitRate(), "medium_rate")
			b.ReportMetric(r.Buffers["large"].HitRate(), "large_rate")
		})
	}
}

// BenchmarkFigure1_ListSizeDistribution regenerates the cumulative
// inverted-list size distribution for Legal.
func BenchmarkFigure1_ListSizeDistribution(b *testing.B) {
	lab := benchLab()
	if _, err := lab.Collection("Legal"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = lab.Figure1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(f.Series[0].Points)), "points")
}

// BenchmarkFigure2_AccessBySize regenerates the access-frequency-by-size
// profile for Legal Query Set 2.
func BenchmarkFigure2_AccessBySize(b *testing.B) {
	lab := benchLab()
	if _, err := lab.Collection("Legal"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = lab.Figure2()
		if err != nil {
			b.Fatal(err)
		}
	}
	var uses float64
	for _, p := range f.Series[0].Points {
		uses += p.Y
	}
	b.ReportMetric(uses, "total_uses")
}

// BenchmarkFigure3_BufferSweep sweeps the large-object buffer size for
// TIPSTER Query Set 1.
func BenchmarkFigure3_BufferSweep(b *testing.B) {
	lab := benchLab()
	if _, err := lab.Collection("TIPSTER"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var f *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = lab.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	pts := f.Series[0].Points
	b.ReportMetric(pts[0].Y, "hitrate_min_buf")
	b.ReportMetric(pts[len(pts)-1].Y, "hitrate_max_buf")
}

// BenchmarkAblationNoReserve measures the reservation optimization.
func BenchmarkAblationNoReserve(b *testing.B) {
	lab := benchLab()
	if _, err := lab.Collection("Legal"); err != nil { // build outside the timer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = lab.AblationReserve("Legal", 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(t.Rows)), "variants")
}

// BenchmarkAblationSinglePool compares the three-pool partition against
// one unpartitioned pool.
func BenchmarkAblationSinglePool(b *testing.B) {
	lab := benchLab()
	if _, err := lab.Collection("Legal"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = lab.AblationSinglePool("Legal", 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(t.Rows)), "variants")
}

// BenchmarkAblationSegmentSize sweeps the medium-pool segment size.
func BenchmarkAblationSegmentSize(b *testing.B) {
	lab := benchLab()
	if _, err := lab.Collection("Legal"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = lab.AblationSegmentSize("Legal", 0, []int{4096, 8192, 16384})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(t.Rows)), "variants")
}

// BenchmarkAblationBufferPolicy compares LRU, FIFO, and clock
// replacement for the record buffers.
func BenchmarkAblationBufferPolicy(b *testing.B) {
	lab := benchLab()
	if _, err := lab.Collection("CACM"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = lab.AblationBufferPolicy("CACM", 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(t.Rows)), "variants")
}

// BenchmarkAblationChunkedLists compares whole vs chunked large lists.
func BenchmarkAblationChunkedLists(b *testing.B) {
	lab := benchLab()
	if _, err := lab.Collection("CACM"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = lab.AblationChunkedLists("CACM", 0, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(t.Rows)), "variants")
}

// BenchmarkParallelSearch measures concurrent query serving over one
// shared engine with a warm Mneme record cache: the batch driver at
// increasing worker counts (queries/s is the headline metric), plus a
// b.RunParallel variant with one Searcher per goroutine.
func BenchmarkParallelSearch(b *testing.B) {
	lab := benchLab()
	built, err := lab.Collection("Legal")
	if err != nil {
		b.Fatal(err)
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	eng, err := core.Open(built.FS, built.Col.Name, core.BackendMneme,
		core.WithAnalyzer(an), core.WithPlan(experiments.PlanFor(built)))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	var queries []string
	for _, q := range built.Col.GenQueries(built.Col.QuerySets[0]) {
		queries = append(queries, q.Text)
	}
	// Warm the record buffers so the measurement isolates concurrency,
	// not cold I/O.
	if _, err := eng.SearchBatch(queries, core.TopK(10)); err != nil {
		b.Fatal(err)
	}

	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("batch/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.SearchBatch(queries, core.Parallelism(w), core.TopK(10)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*float64(len(queries))/b.Elapsed().Seconds(), "queries/s")
		})
	}

	b.Run("runparallel", func(b *testing.B) {
		b.ReportAllocs()
		var cursor atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			s := eng.Acquire()
			for pb.Next() {
				q := queries[int(cursor.Add(1)-1)%len(queries)]
				if _, err := s.Search(q, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkSection2Analysis regenerates the paper's §2 workload
// analysis: size-class fractions, compression rate, term repetition.
func BenchmarkSection2Analysis(b *testing.B) {
	lab := benchLab()
	for _, row := range matrixRows {
		if _, err := lab.Collection(row.col); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var t1, t2 *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		t1, err = lab.AnalyzeCollections()
		if err != nil {
			b.Fatal(err)
		}
		t2, err = lab.AnalyzeQueryRepetition()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(t1.Rows)+len(t2.Rows)), "rows")
}
